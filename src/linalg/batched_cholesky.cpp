#include "linalg/batched_cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sora::linalg {

void BatchedDenseCholesky::configure(std::size_t n, std::size_t batch) {
  SORA_CHECK(batch > 0);
  n_ = n;
  batch_ = batch;
  a_.resize(n * n * batch);
  rhs_.resize(n * batch);
  lane_.resize(batch);
  inv_.resize(batch);
  ok_.assign(batch, 0);
}

void BatchedDenseCholesky::pack(std::size_t b, const Matrix& a) {
  SORA_CHECK(b < batch_ && a.rows() == n_ && a.cols() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = a.row_ptr(i);
    for (std::size_t j = 0; j <= i; ++j) at(i, j)[b] = row[j];
  }
}

// Mirrors cholesky_in_place (cholesky.cpp) with the batch index innermost.
// Every lane executes the identical statement sequence in the identical
// order, so each lane's factor is bitwise equal to the serial kernel's.
// A lane whose pivot fails gets a 1.0 placeholder pivot (so the remaining
// lockstep divisions stay finite for the other lanes) and ok_[b] = 0.
void BatchedDenseCholesky::factor(const std::vector<char>& active) {
  SORA_CHECK(active.size() == batch_);
  const std::size_t n = n_;
  const std::size_t bs = batch_;
  ok_ = active;
  double* const lane = lane_.data();
  double* const inv = inv_.data();
  constexpr std::size_t kBlock = 64;
  for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
    const std::size_t jend = std::min(j0 + kBlock, n);
    // Diagonal block: unblocked factor of A[j0:jend, j0:jend].
    for (std::size_t j = j0; j < jend; ++j) {
      const double* jj = at(j, j);
      for (std::size_t b = 0; b < bs; ++b) lane[b] = jj[b];
      for (std::size_t k = j0; k < j; ++k) {
        const double* jk = at(j, k);
        for (std::size_t b = 0; b < bs; ++b) lane[b] -= jk[b] * jk[b];
      }
      double* ljj = at(j, j);
      for (std::size_t b = 0; b < bs; ++b) {
        if (ok_[b] == 0) {
          ljj[b] = 1.0;
          inv[b] = 0.0;
          continue;
        }
        const double diag = lane[b];
        if (!(diag > 0.0) || !std::isfinite(diag)) {
          ok_[b] = 0;
          ljj[b] = 1.0;
          inv[b] = 0.0;
          continue;
        }
        const double l = std::sqrt(diag);
        ljj[b] = l;
        inv[b] = 1.0 / l;
      }
      for (std::size_t i = j + 1; i < jend; ++i) {
        double* ij = at(i, j);
        for (std::size_t b = 0; b < bs; ++b) lane[b] = ij[b];
        for (std::size_t k = j0; k < j; ++k) {
          const double* ik = at(i, k);
          const double* jk = at(j, k);
          for (std::size_t b = 0; b < bs; ++b) lane[b] -= ik[b] * jk[b];
        }
        for (std::size_t b = 0; b < bs; ++b) ij[b] = lane[b] * inv[b];
      }
    }
    // Panel: rows below the block solve L21 L11^T = A21.
    for (std::size_t i = jend; i < n; ++i) {
      for (std::size_t j = j0; j < jend; ++j) {
        double* ij = at(i, j);
        for (std::size_t b = 0; b < bs; ++b) lane[b] = ij[b];
        for (std::size_t k = j0; k < j; ++k) {
          const double* ik = at(i, k);
          const double* jk = at(j, k);
          for (std::size_t b = 0; b < bs; ++b) lane[b] -= ik[b] * jk[b];
        }
        const double* jj = at(j, j);
        for (std::size_t b = 0; b < bs; ++b) ij[b] = lane[b] / jj[b];
      }
    }
    // Trailing update: A22 -= L21 L21^T, lower triangle only.
    for (std::size_t i = jend; i < n; ++i) {
      for (std::size_t c = jend; c <= i; ++c) {
        for (std::size_t b = 0; b < bs; ++b) lane[b] = 0.0;
        for (std::size_t k = j0; k < jend; ++k) {
          const double* ik = at(i, k);
          const double* ck = at(c, k);
          for (std::size_t b = 0; b < bs; ++b) lane[b] += ik[b] * ck[b];
        }
        double* ic = at(i, c);
        for (std::size_t b = 0; b < bs; ++b) ic[b] -= lane[b];
      }
    }
  }
}

void BatchedDenseCholesky::set_rhs(std::size_t b, const Vec& v) {
  SORA_CHECK(b < batch_ && v.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) rhs_[i * batch_ + b] = v[i];
}

// Mirrors cholesky_solve_in_place: forward L y = b, backward L^T x = y,
// batch index innermost, identical per-lane statement order.
void BatchedDenseCholesky::solve() {
  const std::size_t n = n_;
  const std::size_t bs = batch_;
  double* const lane = lane_.data();
  for (std::size_t i = 0; i < n; ++i) {
    double* xi = rhs_.data() + i * bs;
    for (std::size_t b = 0; b < bs; ++b) lane[b] = xi[b];
    for (std::size_t k = 0; k < i; ++k) {
      const double* lik = at(i, k);
      const double* xk = rhs_.data() + k * bs;
      for (std::size_t b = 0; b < bs; ++b) lane[b] -= lik[b] * xk[b];
    }
    const double* lii = at(i, i);
    for (std::size_t b = 0; b < bs; ++b) xi[b] = lane[b] / lii[b];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double* xi = rhs_.data() + ii * bs;
    for (std::size_t b = 0; b < bs; ++b) lane[b] = xi[b];
    for (std::size_t k = ii + 1; k < n; ++k) {
      const double* lki = at(k, ii);
      const double* xk = rhs_.data() + k * bs;
      for (std::size_t b = 0; b < bs; ++b) lane[b] -= lki[b] * xk[b];
    }
    const double* lii = at(ii, ii);
    for (std::size_t b = 0; b < bs; ++b) xi[b] = lane[b] / lii[b];
  }
}

void BatchedDenseCholesky::get_rhs(std::size_t b, Vec& v) const {
  SORA_CHECK(b < batch_ && v.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) v[i] = rhs_[i * batch_ + b];
}

}  // namespace sora::linalg
