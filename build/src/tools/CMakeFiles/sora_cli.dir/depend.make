# Empty dependencies file for sora_cli.
# This may be replaced when dependencies are built.
