// Scenario example: a week of diurnal web traffic on the full 18x48 US
// topology (the paper's Sec. V setting), comparing how each policy tracks
// the workload. Prints an hourly log of aggregate demand vs the aggregate
// tier-2 allocation chosen by ROA, exposing the follow-up/exponential-decay
// behaviour of Sec. III-C.
//
//   $ ./examples/wikipedia_week [--b WEIGHT] [--eps EPS] [--k K]
#include <cstdio>
#include <iostream>

#include "baselines/oneshot.hpp"
#include "cloudnet/instance.hpp"
#include "cloudnet/workload.hpp"
#include "core/cost.hpp"
#include "core/roa.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace sora;
  const auto opts = util::Options::parse(argc, argv, {"b", "eps", "k"});
  const double b = opts.get_double("b", 1000.0);
  const double eps = opts.get_double("eps", 1e-2);
  const std::size_t k = static_cast<std::size_t>(opts.get_int("k", 1));

  util::Rng rng(7);
  const auto trace = cloudnet::wikipedia_like(168, rng);  // one week

  cloudnet::InstanceConfig cfg;  // full paper topology
  cfg.num_tier2 = 18;
  cfg.num_tier1 = 48;
  cfg.sla_k = k;
  cfg.reconfig_weight = b;
  cfg.seed = 7;
  const core::Instance inst = cloudnet::build_instance(cfg, trace);

  std::cout << "one week, 18 core clouds x 48 edge clouds, k=" << k
            << ", b=" << b << ", eps=" << eps << "\n";

  core::RoaOptions roa_opts;
  roa_opts.eps = roa_opts.eps_prime = eps;
  const auto roa = core::run_roa(inst, roa_opts);
  const auto greedy = baselines::run_one_shot_sequence(inst);

  std::printf("\n%5s %10s %12s %12s\n", "hour", "demand", "ROA alloc",
              "greedy alloc");
  for (std::size_t t = 0; t < inst.horizon; t += 6) {
    const auto roa_totals =
        core::tier2_totals(inst, roa.trajectory.slots[t].x);
    const auto greedy_totals =
        core::tier2_totals(inst, greedy.trajectory.slots[t].x);
    std::printf("%5zu %10.2f %12.2f %12.2f\n", t, inst.total_demand(t),
                linalg::sum(roa_totals), linalg::sum(greedy_totals));
  }

  std::cout << "\ntotals: ROA " << roa.cost.total() << " (reconfig "
            << roa.cost.reconfiguration << ")  vs greedy "
            << greedy.cost.total() << " (reconfig "
            << greedy.cost.reconfiguration << ")\n"
            << "ROA spent " << roa.solve_seconds << "s ("
            << roa.newton_steps << " Newton steps across " << inst.horizon
            << " slots)\n";
  return 0;
}
