# Empty compiler generated dependencies file for sora_cloudnet.
# This may be replaced when dependencies are built.
