// N-tier extension (Sec. III-E): the regularized online algorithm on 3- and
// 4-tier chains vs the greedy sequence and the offline optimum, across
// reconfiguration weights.
#include <cmath>
#include <iostream>

#include "core/ntier.hpp"
#include "eval/report.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

int main() {
  using namespace sora;
  const auto scale = eval::EvalScale::from_env();
  const std::uint64_t seed = 20160704;
  eval::print_banner("N-tier extension — ROA vs greedy vs offline", scale,
                     seed);

  const std::size_t horizon = scale.full ? 72 : 36;
  const std::vector<double> weights = {10.0, 100.0, 1000.0};
  const std::vector<std::vector<std::size_t>> shapes = {{8, 4, 2},
                                                        {6, 4, 3, 2}};

  struct Cell {
    double roa, greedy, offline;
  };
  std::vector<Cell> cells(weights.size() * shapes.size());

  util::parallel_for(0, cells.size(), [&](std::size_t idx) {
    const std::size_t wi = idx % weights.size();
    const std::size_t si = idx / weights.size();
    util::Rng trace_rng(seed + idx);
    std::vector<double> trace(horizon);
    for (std::size_t t = 0; t < horizon; ++t)
      trace[t] = 0.55 + 0.4 * std::sin(0.35 * static_cast<double>(t)) +
                 0.05 * trace_rng.uniform();
    core::NTierConfig cfg;
    cfg.tier_sizes = shapes[si];
    cfg.sla_k = 2;
    cfg.reconfig_weight = weights[wi];
    util::Rng build_rng(seed + 100 + idx);
    const auto inst = core::build_ntier_instance(cfg, trace, build_rng);
    const auto lp = eval::offline_lp_options(scale);
    solver::LpSolveOptions slot_lp;  // per-slot LPs are small: simplex
    cells[idx].roa = core::ntier_total_cost(inst, core::run_ntier_roa(inst));
    cells[idx].greedy =
        core::ntier_total_cost(inst, core::run_ntier_greedy(inst, slot_lp));
    cells[idx].offline =
        core::ntier_total_cost(inst, core::run_ntier_offline(inst, lp));
  });

  util::TablePrinter table({"tiers", "b", "greedy / OPT", "ROA / OPT",
                            "OPT (abs)"});
  util::CsvWriter csv({"tiers", "b", "greedy_ratio", "roa_ratio", "offline"});
  for (std::size_t si = 0; si < shapes.size(); ++si) {
    std::string shape_name;
    for (std::size_t n = 0; n < shapes[si].size(); ++n)
      shape_name += (n ? "-" : "") + std::to_string(shapes[si][n]);
    for (std::size_t wi = 0; wi < weights.size(); ++wi) {
      const Cell& c = cells[si * weights.size() + wi];
      table.add_row({shape_name, util::TablePrinter::fmt(weights[wi], "%.0g"),
                     util::TablePrinter::fmt(c.greedy / c.offline, "%.2f"),
                     util::TablePrinter::fmt(c.roa / c.offline, "%.2f"),
                     util::TablePrinter::fmt(c.offline, "%.4g")});
      csv.add_row({shape_name, std::to_string(weights[wi]),
                   std::to_string(c.greedy / c.offline),
                   std::to_string(c.roa / c.offline),
                   std::to_string(c.offline)});
    }
  }
  eval::emit("ntier", table, csv);
  return 0;
}
