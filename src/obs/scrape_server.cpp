#include "obs/scrape_server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"

namespace sora::obs {

namespace {

constexpr const char* kTextContentType =
    "text/plain; version=0.0.4; charset=utf-8";

std::string http_response(const char* status, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; a scrape is best-effort
    off += static_cast<std::size_t>(n);
  }
}

/// First request line up to CRLF, e.g. "GET /metrics HTTP/1.1". Reads at
/// most 4 KiB; a scrape request never needs more.
std::string read_request_line(int fd) {
  char buf[4096];
  std::size_t len = 0;
  while (len < sizeof buf) {
    const ssize_t n = ::recv(fd, buf + len, sizeof buf - len, 0);
    if (n <= 0) break;
    len += static_cast<std::size_t>(n);
    for (std::size_t k = 0; k + 1 < len; ++k)
      if (buf[k] == '\r' && buf[k + 1] == '\n') return std::string(buf, k);
    // Stop once the header block is complete even without a full parse.
    if (len >= 4 && std::memcmp(buf + len - 4, "\r\n\r\n", 4) == 0) break;
  }
  return std::string(buf, len);
}

void handle_connection(int fd) {
  // Bound a stuck client in BOTH directions; the loop must get back to
  // accept(). Without SO_SNDTIMEO a connected peer that never reads (zero
  // receive window) parks send() forever, wedging the single accept thread
  // and hanging stop()'s join.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);

  const std::string line = read_request_line(fd);
  std::string response;
  if (line.compare(0, 4, "GET ") != 0) {
    response = http_response("405 Method Not Allowed", kTextContentType,
                             "method not allowed\n");
  } else {
    const std::size_t path_end = line.find(' ', 4);
    std::string path = line.substr(4, path_end == std::string::npos
                                          ? std::string::npos
                                          : path_end - 4);
    // Scrapers may append query strings (?query=..., federation match[]
    // params); route on the bare path.
    path = path.substr(0, path.find('?'));
    if (path == "/metrics") {
      response = http_response("200 OK", kTextContentType,
                               Registry::global().render_text());
    } else if (path == "/healthz") {
      response = http_response("200 OK", kTextContentType, "ok\n");
    } else {
      response =
          http_response("404 Not Found", kTextContentType, "not found\n");
    }
  }
  send_all(fd, response);
}

}  // namespace

struct ScrapeServer::Impl {
  std::atomic<bool> running{false};
  int listen_fd = -1;
  int port = -1;
  std::thread thread;
  // The connection currently being served, so stop() can shut it down and
  // unblock a send()/recv() in flight. Guarded by client_mutex; -1 when the
  // loop is parked in accept().
  std::mutex client_mutex;
  int client_fd = -1;

  void accept_loop() {
    while (running.load(std::memory_order_acquire)) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listener shut down (stop()) or broken
      }
      {
        std::lock_guard<std::mutex> lock(client_mutex);
        client_fd = fd;
      }
      handle_connection(fd);
      {
        std::lock_guard<std::mutex> lock(client_mutex);
        ::close(client_fd);
        client_fd = -1;
      }
    }
  }
};

ScrapeServer::ScrapeServer() : impl_(new Impl) {}

ScrapeServer::~ScrapeServer() {
  stop();
  delete impl_;
}

ScrapeServer& ScrapeServer::global() {
  static ScrapeServer* server = new ScrapeServer;  // leaked past atexit
  return *server;
}

int ScrapeServer::start(int port) {
  Impl& im = *impl_;
  if (im.running.load(std::memory_order_acquire)) return kAlreadyRunning;
  if (port < 0 || port > 65535) return -1;
  // A previous run's thread may still need reaping after stop().
  if (im.thread.joinable()) im.thread.join();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return -1;
  }

  im.listen_fd = fd;
  im.port = static_cast<int>(ntohs(addr.sin_port));
  im.running.store(true, std::memory_order_release);
  im.thread = std::thread([&im] { im.accept_loop(); });
  return im.port;
}

void ScrapeServer::stop() {
  Impl& im = *impl_;
  if (!im.running.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() wakes the blocked accept(); close() alone may not.
  ::shutdown(im.listen_fd, SHUT_RDWR);
  ::close(im.listen_fd);
  // Likewise unwedge any in-flight connection so the join below is bounded
  // even when the client never drains its receive buffer. The loop owns
  // close(); stop() only shuts the socket down.
  {
    std::lock_guard<std::mutex> lock(im.client_mutex);
    if (im.client_fd >= 0) ::shutdown(im.client_fd, SHUT_RDWR);
  }
  if (im.thread.joinable()) im.thread.join();
  im.listen_fd = -1;
  im.port = -1;
}

bool ScrapeServer::running() const {
  return impl_->running.load(std::memory_order_acquire);
}

int ScrapeServer::port() const {
  return running() ? impl_->port : -1;
}

int start_global_scrape_server(int port) {
  ScrapeServer& server = ScrapeServer::global();
  const int bound = server.start(port);
  if (bound == ScrapeServer::kAlreadyRunning) {
    // Two wiring paths (env contract + an explicit --metrics-port) may both
    // ask for the server; the first one wins and that is fine.
    std::fprintf(stderr,
                 "[info] sora_obs: scrape server already on 127.0.0.1:%d\n",
                 server.port());
    return server.port();
  }
  if (bound < 0) {
    std::fprintf(stderr,
                 "[warn] sora_obs: scrape server failed to bind port %d\n",
                 port);
  } else {
    std::fprintf(stderr,
                 "[info] sora_obs: serving /metrics on 127.0.0.1:%d\n",
                 bound);
  }
  return bound;
}

}  // namespace sora::obs
