#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dcnc.hpp"
#include "baselines/lcp_m.hpp"
#include "baselines/offline.hpp"
#include "baselines/oneshot.hpp"
#include "core/cost.hpp"
#include "core/roa.hpp"
#include "util/rng.hpp"

namespace sora::baselines {
namespace {

using core::Instance;

Instance make_instance(std::size_t horizon, double reconfig_weight,
                       std::uint64_t seed) {
  sora::util::Rng rng(seed);
  const auto trace = cloudnet::wikipedia_like(horizon, rng);
  cloudnet::InstanceConfig cfg;
  cfg.num_tier2 = 3;
  cfg.num_tier1 = 5;
  cfg.sla_k = 2;
  cfg.reconfig_weight = reconfig_weight;
  cfg.seed = seed;
  return cloudnet::build_instance(cfg, trace);
}

TEST(Baselines, OneShotFeasibleAndTracksDemand) {
  const Instance inst = make_instance(8, 20.0, 1);
  const BaselineRun run = run_one_shot_sequence(inst);
  EXPECT_TRUE(core::is_feasible(inst, run.trajectory, 1e-6));
  // Greedy coverage hugs the demand at every slot.
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    double covered = 0.0;
    for (std::size_t j = 0; j < inst.num_tier1(); ++j)
      for (const std::size_t e : inst.edges_of_tier1[j])
        covered += std::min(run.trajectory.slots[t].x[e],
                            run.trajectory.slots[t].y[e]);
    EXPECT_NEAR(covered, inst.total_demand(t), 1e-5);
  }
}

TEST(Baselines, OfflineIsLowerBoundForAll) {
  const Instance inst = make_instance(10, 100.0, 2);
  const double offline = run_offline_optimum(inst).cost.total();
  EXPECT_GE(run_one_shot_sequence(inst).cost.total(), offline - 1e-6);
  EXPECT_GE(run_lcp_m(inst).cost.total(), offline - 1e-6);
  EXPECT_GE(core::run_roa(inst).cost.total(), offline - 1e-6);
}

TEST(Baselines, LcpMFeasible) {
  const Instance inst = make_instance(8, 50.0, 3);
  const BaselineRun run = run_lcp_m(inst);
  EXPECT_TRUE(core::is_feasible(inst, run.trajectory, 1e-5));
}

TEST(Baselines, LcpMBeatsGreedyWithExpensiveReconfig) {
  // The lazy band avoids the greedy policy's constant re-buying when the
  // reconfiguration price dominates.
  const Instance inst = make_instance(16, 500.0, 4);
  const double lcp = run_lcp_m(inst).cost.total();
  const double greedy = run_one_shot_sequence(inst).cost.total();
  EXPECT_LT(lcp, greedy);
}

TEST(Baselines, GreedyNearOptimalWithCheapReconfig) {
  const Instance inst = make_instance(10, 0.01, 5);
  const double greedy = run_one_shot_sequence(inst).cost.total();
  const double offline = run_offline_optimum(inst).cost.total();
  EXPECT_LT(greedy, 1.05 * offline);
}

// ---------------------------------------------------------------------------
// DCNC — the queue-based drift-plus-penalty rival.

TEST(Dcnc, ServesDemandAndAccountsQueues) {
  const Instance inst = make_instance(12, 20.0, 6);
  const DcncRun run = run_dcnc(inst);
  ASSERT_EQ(run.trajectory.horizon(), inst.horizon);
  ASSERT_EQ(run.queue_total.size(), inst.horizon);

  double demand = 0.0;
  for (const auto& row : inst.demand)
    for (const double d : row) demand += d;
  EXPECT_NEAR(run.total_demand, demand, 1e-9);
  EXPECT_GT(run.total_served, 0.0);
  EXPECT_LE(run.total_served, run.total_demand + 1e-9);
  // Served + leftover backlog accounts for every demand unit.
  EXPECT_NEAR(run.total_served + run.final_backlog, run.total_demand, 1e-9);
  EXPECT_GE(run.max_backlog, run.mean_backlog);
  EXPECT_TRUE(std::isfinite(run.cost.total()));
}

TEST(Dcnc, ZeroVDrainsQueuesGreedily) {
  // V = 0 ignores prices entirely: serve whenever capacity allows. With the
  // provisioning-rule margin above 1, every slot's demand fits, so backlog
  // never accumulates.
  const Instance inst = make_instance(10, 20.0, 7);
  const DcncRun run = run_dcnc(inst, {.V = 0.0});
  EXPECT_NEAR(run.final_backlog, 0.0, 1e-9);
  EXPECT_NEAR(run.total_served, run.total_demand, 1e-9);
}

TEST(Dcnc, DrainCapLimitsCatchUpBurst) {
  const Instance inst = make_instance(10, 20.0, 8);
  DcncOptions opt;
  opt.V = 0.0;
  opt.max_drain_per_slot = 0.05;  // tiny: backlog can barely catch up
  const DcncRun capped = run_dcnc(inst, opt);
  const DcncRun uncapped = run_dcnc(inst, {.V = 0.0});
  // The cap can only defer service, never add it.
  EXPECT_LE(capped.total_served, uncapped.total_served + 1e-9);
  EXPECT_GE(capped.final_backlog, uncapped.final_backlog - 1e-9);
}

TEST(Dcnc, DeterministicForFixedInstance) {
  const Instance inst = make_instance(8, 20.0, 9);
  const DcncRun a = run_dcnc(inst);
  const DcncRun b = run_dcnc(inst);
  EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
  EXPECT_DOUBLE_EQ(a.mean_backlog, b.mean_backlog);
  for (std::size_t t = 0; t < inst.horizon; ++t)
    for (std::size_t e = 0; e < inst.num_edges(); ++e)
      EXPECT_DOUBLE_EQ(a.trajectory.slots[t].x[e],
                       b.trajectory.slots[t].x[e]);
}

}  // namespace
}  // namespace sora::baselines
