
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/ipm.cpp" "src/solver/CMakeFiles/sora_solver.dir/ipm.cpp.o" "gcc" "src/solver/CMakeFiles/sora_solver.dir/ipm.cpp.o.d"
  "/root/repo/src/solver/lp.cpp" "src/solver/CMakeFiles/sora_solver.dir/lp.cpp.o" "gcc" "src/solver/CMakeFiles/sora_solver.dir/lp.cpp.o.d"
  "/root/repo/src/solver/lp_solve.cpp" "src/solver/CMakeFiles/sora_solver.dir/lp_solve.cpp.o" "gcc" "src/solver/CMakeFiles/sora_solver.dir/lp_solve.cpp.o.d"
  "/root/repo/src/solver/pdhg.cpp" "src/solver/CMakeFiles/sora_solver.dir/pdhg.cpp.o" "gcc" "src/solver/CMakeFiles/sora_solver.dir/pdhg.cpp.o.d"
  "/root/repo/src/solver/presolve.cpp" "src/solver/CMakeFiles/sora_solver.dir/presolve.cpp.o" "gcc" "src/solver/CMakeFiles/sora_solver.dir/presolve.cpp.o.d"
  "/root/repo/src/solver/simplex.cpp" "src/solver/CMakeFiles/sora_solver.dir/simplex.cpp.o" "gcc" "src/solver/CMakeFiles/sora_solver.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/sora_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
