// Slot-SLO telemetry: digest accuracy against exact quantiles, tracker
// rollups, Prometheus rendering, and a live HTTP scrape round-trip.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/scrape_server.hpp"
#include "obs/slo.hpp"
#include "util/rng.hpp"

namespace sora::obs {
namespace {

struct MetricsOn {
  MetricsOn() { set_metrics_enabled(true); }
  ~MetricsOn() { set_metrics_enabled(false); }
};

double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  // Nearest-rank, matching SloDigest's convention.
  const auto n = xs.size();
  std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(n) + 0.5);
  rank = std::max<std::size_t>(rank, 1);
  return xs[std::min(rank, n) - 1];
}

// Half-octave buckets with geometric interpolation: worst-case relative
// error is sqrt(2)-1 ~ 41% at a bucket edge, but for smooth distributions
// the interpolated estimate lands well inside; we assert the documented
// bucket-width bound rather than the optimistic typical case.
constexpr double kBucketBound = 0.42;

TEST(SloDigest, QuantilesTrackExactWithinBucketResolution) {
  util::Rng rng(7);
  SloDigest digest;
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform latencies over [50us, 500ms] — spans ~13 buckets.
    const double v = 50e-6 * std::pow(1e4, rng.uniform());
    xs.push_back(v);
    digest.observe(v);
  }
  EXPECT_EQ(digest.count(), 20000u);
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = exact_quantile(xs, q);
    const double est = digest.quantile(q);
    EXPECT_NEAR(est / exact, 1.0, kBucketBound)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(SloDigest, ExtremesClampAndMaxIsExact) {
  SloDigest digest;
  digest.observe(1e-9);   // below the grid: first bucket
  digest.observe(1e9);    // above the grid: last bucket
  EXPECT_EQ(digest.count(), 2u);
  EXPECT_DOUBLE_EQ(digest.max(), 1e9);
  // The p100 estimate is clamped to the observed max, never extrapolated
  // beyond it.
  EXPECT_LE(digest.quantile(1.0), 1e9);
  EXPECT_GT(digest.quantile(1.0), 0.0);
}

TEST(SloDigest, EmptyReturnsZeroAndResetClears) {
  SloDigest digest;
  EXPECT_EQ(digest.quantile(0.5), 0.0);
  digest.observe(0.25);
  EXPECT_GT(digest.quantile(0.5), 0.0);
  digest.reset();
  EXPECT_EQ(digest.count(), 0u);
  EXPECT_EQ(digest.quantile(0.5), 0.0);
}

TEST(SloDigest, ConcurrentObservesAreLossless) {
  SloDigest digest;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w)
    workers.emplace_back([&digest, w] {
      for (int i = 0; i < kPerThread; ++i)
        digest.observe(1e-3 * (1 + w));
    });
  for (auto& t : workers) t.join();
  EXPECT_EQ(digest.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(SlotSloTracker, ReportAggregatesDeadlinesAndHealth) {
  SlotSloOptions opts;
  opts.budget_seconds = 0.010;
  SlotSloTracker tracker(opts);

  SlotSample fast;
  fast.latency_seconds = 0.002;
  fast.backend_name = "warm_ipm";
  for (int i = 0; i < 8; ++i) tracker.record(fast);

  SlotSample slow;  // misses the 10ms budget and fell back
  slow.latency_seconds = 0.050;
  slow.backend_name = "cold_ipm";
  slow.attempts = 2;
  slow.fell_back = true;
  tracker.record(slow);

  SlotSample bad;  // degraded slot, inside budget
  bad.latency_seconds = 0.001;
  bad.degraded = true;
  tracker.record(bad);

  const SlotSloReport report = tracker.report();
  EXPECT_EQ(report.slots, 10u);
  EXPECT_EQ(report.deadline_misses, 1u);
  EXPECT_EQ(report.fallback_slots, 1u);
  EXPECT_EQ(report.degraded_slots, 1u);
  EXPECT_DOUBLE_EQ(report.budget_seconds, 0.010);
  EXPECT_FALSE(report.met_slo());
  EXPECT_GT(report.p99_seconds, report.p50_seconds);
  EXPECT_DOUBLE_EQ(report.max_seconds, 0.050);
}

TEST(SlotSloTracker, ZeroBudgetDisablesDeadlineAccounting) {
  SlotSloTracker tracker;  // budget 0
  SlotSample s;
  s.latency_seconds = 123.0;
  tracker.record(s);
  const SlotSloReport report = tracker.report();
  EXPECT_EQ(report.deadline_misses, 0u);
  EXPECT_TRUE(report.met_slo());
}

TEST(SlotSlo, GlobalMetricsAndSummaryRenderWhenEnabled) {
  MetricsOn on;
  reset_global_slot_slo();
  SlotSample s;
  s.latency_seconds = 0.004;
  s.backend_name = "warm_ipm";
  s.budget_seconds = 0.010;
  record_slot_sample(s);
  s.latency_seconds = 0.200;  // budget miss
  record_slot_sample(s);

  EXPECT_EQ(global_slot_digest().count(), 2u);
  const std::string text = render_slo_text();
  EXPECT_NE(text.find("sora_slot_latency_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("sora_slot_latency_seconds_count 2"),
            std::string::npos);

  // The summary also rides along with the registry's full exposition via
  // the text-extension hook.
  const std::string full = Registry::global().render_text();
  EXPECT_NE(full.find("sora_slot_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(full.find("sora_slot_deadline_miss_total"), std::string::npos);
}

TEST(SlotSlo, DisabledRecordingIsDropped) {
  set_metrics_enabled(false);
  reset_global_slot_slo();
  SlotSample s;
  s.latency_seconds = 1.0;
  record_slot_sample(s);
  EXPECT_EQ(global_slot_digest().count(), 0u);
}

// ---- live scrape round-trip ------------------------------------------------

std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return {};
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n"
      "Connection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

TEST(ScrapeServerTest, ServesMetricsOnEphemeralPort) {
  MetricsOn on;
  reset_global_slot_slo();
  SlotSample s;
  s.latency_seconds = 0.008;
  s.backend_name = "warm_ipm";
  record_slot_sample(s);

  ScrapeServer server;
  const int port = server.start(0);
  ASSERT_GT(port, 0);
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.port(), port);

  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("sora_slot_latency_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("sora_slot_solves_total"), std::string::npos);

  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = http_get(port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  // Idempotent stop and restartability.
  server.stop();
  const int port2 = server.start(0);
  ASSERT_GT(port2, 0);
  server.stop();
}

TEST(ScrapeServerTest, DoubleStartFails) {
  ScrapeServer server;
  const int port = server.start(0);
  ASSERT_GT(port, 0);
  // Distinguishable from a bind failure (-1): the server is simply occupied.
  EXPECT_EQ(server.start(0), ScrapeServer::kAlreadyRunning);
  server.stop();
}

}  // namespace
}  // namespace sora::obs
