# Empty dependencies file for sora_linalg.
# This may be replaced when dependencies are built.
