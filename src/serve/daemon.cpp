#include "serve/daemon.hpp"

#include <cstring>

#include "core/cost.hpp"
#include "core/resilience.hpp"
#include "obs/obs.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sora::serve {
namespace {

struct ServeMetrics {
  obs::Counter* ticks;
  obs::Counter* deadline_reroutes;
  obs::Counter* snapshots;
  obs::Gauge* next_slot;
  obs::Gauge* cumulative_cost;
};

const ServeMetrics& serve_metrics() {
  static const ServeMetrics metrics = [] {
    auto& reg = obs::Registry::global();
    return ServeMetrics{
        &reg.counter("sora_serve_ticks_total", "Workload ticks served"),
        &reg.counter("sora_serve_deadline_reroutes_total",
                     "Slots re-routed to hold-and-repair after a deadline "
                     "miss"),
        &reg.counter("sora_serve_snapshots_total", "Snapshots written"),
        &reg.gauge("sora_serve_next_slot", "Next slot index to serve"),
        &reg.gauge("sora_serve_cumulative_cost",
                   "Cumulative P1 cost over the served stream"),
    };
  }();
  return metrics;
}

std::uint64_t fnv1a_doubles(std::uint64_t hash, const core::Vec& v) {
  for (const double x : v) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &x, sizeof bytes);
    for (const unsigned char b : bytes) {
      hash ^= b;
      hash *= 1099511628211ull;
    }
  }
  return hash;
}

// Allocation cost of one slot against an explicit price row (the streaming
// counterpart of core::slot_allocation_cost, which indexes the horizon).
double row_allocation_cost(const core::Instance& inst,
                           const core::SlotInputs& in,
                           const core::Allocation& alloc) {
  double cost = 0.0;
  for (std::size_t e = 0; e < inst.num_edges(); ++e) {
    cost += in.price(inst.edges[e].tier2) * alloc.x[e];
    cost += inst.edge_price[e] * alloc.y[e];
  }
  if (inst.has_tier1())
    for (std::size_t e = 0; e < inst.num_edges(); ++e)
      cost += in.t1_price(inst.edges[e].tier1) * alloc.z[e];
  return cost;
}

}  // namespace

ServeDaemon::ServeDaemon(const core::Instance& inst,
                         const ServeOptions& options)
    : inst_(inst),
      options_(options),
      workspace_(inst, options.roa),
      slo_(options.roa.slo),
      prev_(core::Allocation::zeros(inst.num_edges())),
      lambda_(inst.num_tier1(), 0.0) {
  SORA_CHECK_MSG(options_.requests_per_unit > 0.0,
                 "requests_per_unit must be positive");
}

std::uint64_t ServeDaemon::hash_allocation(const core::Allocation& alloc) {
  std::uint64_t hash = 1469598103934665603ull;
  hash = fnv1a_doubles(hash, alloc.x);
  hash = fnv1a_doubles(hash, alloc.y);
  hash = fnv1a_doubles(hash, alloc.z);
  return hash;
}

SlotResult ServeDaemon::step(const Tick& tick) {
  SORA_CHECK(tick.kind == Tick::Kind::kTick);
  SORA_CHECK(tick.requests.size() == inst_.num_tier1());

  for (std::size_t j = 0; j < lambda_.size(); ++j)
    lambda_[j] = tick.requests[j] / options_.requests_per_unit;

  // Prices cycle through the instance horizon so the stream can outlive the
  // trace the instance was built from.
  const std::size_t price_row = next_slot_ % inst_.horizon;
  core::SlotInputs in{next_slot_, &lambda_, &inst_.tier2_price[price_row],
                      inst_.has_tier1() ? &inst_.tier1_price[price_row]
                                        : nullptr};

  util::Timer timer;
  core::P2Solution p2 = workspace_.step(in, prev_);
  double latency = timer.seconds();

  const double budget = options_.roa.slo.budget_seconds;
  const bool miss = budget > 0.0 && latency > budget;
  if (miss && !p2.outcome.degraded) {
    // The solve finished after the slot boundary: the answer is worthless
    // (deploying it late would charge reconfiguration for a state the slot
    // is already past), so publish the held-and-repaired decision instead.
    SORA_LOG_WARN << "serve: slot " << next_slot_ << " missed budget ("
                  << latency * 1e3 << " ms > " << budget * 1e3
                  << " ms); degrading to hold-and-repair";
    p2 = workspace_.degrade(in, prev_);
    latency = timer.seconds();
    if (obs::metrics_enabled()) serve_metrics().deadline_reroutes->inc();
  }

  obs::SlotSample sample = core::to_slot_sample(p2.outcome, latency);
  slo_.record(sample);
  core::record_flight("serve_slot", next_slot_, p2.outcome, latency);

  SlotResult result;
  result.slot = next_slot_;
  result.backend = core::to_string(p2.outcome.backend);
  result.attempts = p2.outcome.attempts;
  result.degraded = p2.outcome.degraded;
  result.deadline_miss = miss;
  result.latency_seconds = latency;
  result.slot_cost = row_allocation_cost(inst_, in, p2.alloc) +
                     core::reconfiguration_cost(inst_, prev_, p2.alloc);
  result.alloc_hash = hash_allocation(p2.alloc);

  stats_.slots += 1;
  if (p2.outcome.degraded) stats_.degraded_slots += 1;
  if (p2.outcome.fell_back()) stats_.fallback_slots += 1;
  if (miss) stats_.deadline_misses += 1;
  stats_.cost.allocation += row_allocation_cost(inst_, in, p2.alloc);
  stats_.cost.reconfiguration +=
      core::reconfiguration_cost(inst_, prev_, p2.alloc);
  result.cumulative_cost = stats_.cost.total();

  prev_ = p2.alloc;
  result.alloc = std::move(p2.alloc);
  ++next_slot_;

  if (obs::metrics_enabled()) {
    const ServeMetrics& metrics = serve_metrics();
    metrics.ticks->inc();
    metrics.next_slot->set(static_cast<double>(next_slot_));
    metrics.cumulative_cost->set(result.cumulative_cost);
  }

  if (!options_.snapshot_path.empty() && options_.snapshot_every > 0 &&
      next_slot_ % options_.snapshot_every == 0) {
    std::string error;
    if (!write_snapshot_now(&error))
      SORA_LOG_ERROR << "serve: snapshot failed at slot " << next_slot_
                     << ": " << error;
  }
  return result;
}

bool ServeDaemon::write_snapshot_now(std::string* error) {
  if (options_.snapshot_path.empty()) {
    if (error != nullptr) *error = "no snapshot path configured";
    return false;
  }
  ServeSnapshot snap;
  snap.next_slot = next_slot_;
  snap.num_tier1 = inst_.num_tier1();
  snap.num_tier2 = inst_.num_tier2();
  snap.num_edges = inst_.num_edges();
  snap.prev = prev_;
  snap.has_warm = workspace_.export_warm_start(snap.warm);
  snap.cost = stats_.cost;
  snap.slots = stats_.slots;
  snap.degraded_slots = stats_.degraded_slots;
  snap.fallback_slots = stats_.fallback_slots;
  snap.deadline_misses = stats_.deadline_misses;
  if (!write_snapshot(options_.snapshot_path, snap, error)) return false;
  stats_.snapshots_written += 1;
  if (obs::metrics_enabled()) serve_metrics().snapshots->inc();
  SORA_LOG_INFO << "serve: snapshot @ slot " << next_slot_ << " -> "
                << options_.snapshot_path;
  return true;
}

bool ServeDaemon::restore(std::string* error) {
  ServeSnapshot snap;
  if (!read_snapshot(options_.snapshot_path, snap, error)) return false;
  if (snap.num_tier1 != inst_.num_tier1() ||
      snap.num_tier2 != inst_.num_tier2() ||
      snap.num_edges != inst_.num_edges()) {
    if (error != nullptr)
      *error = "snapshot topology (" + std::to_string(snap.num_tier1) + "x" +
               std::to_string(snap.num_tier2) + ", " +
               std::to_string(snap.num_edges) +
               " edges) does not match the instance (" +
               std::to_string(inst_.num_tier1()) + "x" +
               std::to_string(inst_.num_tier2()) + ", " +
               std::to_string(inst_.num_edges()) + " edges)";
    return false;
  }
  if (snap.prev.x.size() != inst_.num_edges() ||
      snap.prev.y.size() != inst_.num_edges() ||
      snap.prev.z.size() != inst_.num_edges()) {
    if (error != nullptr) *error = "snapshot allocation size mismatch";
    return false;
  }
  if (snap.has_warm) {
    if (!workspace_.import_warm_start(snap.warm)) {
      if (error != nullptr) *error = "snapshot warm-start size mismatch";
      return false;
    }
  } else {
    workspace_.reset_warm_start();
  }
  prev_ = snap.prev;
  next_slot_ = snap.next_slot;
  stats_.cost = snap.cost;
  stats_.slots = snap.slots;
  stats_.degraded_slots = snap.degraded_slots;
  stats_.fallback_slots = snap.fallback_slots;
  stats_.deadline_misses = snap.deadline_misses;
  SORA_LOG_INFO << "serve: restored snapshot, resuming at slot " << next_slot_;
  return true;
}

}  // namespace sora::serve
