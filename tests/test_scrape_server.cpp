// ScrapeServer lifecycle and robustness: restart cycles, distinguishable
// start() failures, query-string routing, and the wedged-client regression
// (a connected peer that never reads must not hang stop()).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/scrape_server.hpp"

namespace sora::obs {
namespace {

std::string http_get(int port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect failed";
    return {};
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n"
      "Connection: close\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) response.append(buf, n);
  ::close(fd);
  return response;
}

TEST(ScrapeServerLifecycle, RestartCyclesOnSameAndFreshPorts) {
  ScrapeServer server;
  const int port = server.start(0);
  ASSERT_GT(port, 0);
  EXPECT_NE(http_get(port, "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
  EXPECT_FALSE(server.running());

  // Same port again (SO_REUSEADDR makes this deterministic), then a fresh
  // ephemeral one; each cycle must serve.
  const int again = server.start(port);
  ASSERT_EQ(again, port);
  EXPECT_NE(http_get(again, "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();

  const int fresh = server.start(0);
  ASSERT_GT(fresh, 0);
  EXPECT_NE(http_get(fresh, "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
  server.stop();
}

TEST(ScrapeServerLifecycle, StartFailuresAreDistinguishable) {
  ScrapeServer server;
  EXPECT_EQ(server.start(-1), -1);      // invalid port while stopped
  EXPECT_EQ(server.start(70000), -1);   // out of range
  EXPECT_FALSE(server.running());

  const int port = server.start(0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(server.start(0), ScrapeServer::kAlreadyRunning);
  EXPECT_EQ(server.port(), port);  // the running server is untouched

  // A second server on the SAME port is a genuine bind failure, not
  // kAlreadyRunning.
  ScrapeServer rival;
  EXPECT_EQ(rival.start(port), -1);
  server.stop();
}

TEST(ScrapeServerRouting, QueryStringsResolveToThePlainPath) {
  set_metrics_enabled(true);
  ScrapeServer server;
  const int port = server.start(0);
  ASSERT_GT(port, 0);

  EXPECT_NE(http_get(port, "/metrics?query=sora_slot").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/healthz?verbose=1").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/nope?still=404").find("HTTP/1.1 404"),
            std::string::npos);
  server.stop();
  set_metrics_enabled(false);
}

// Regression: a client that connects, sends a request, and then never reads
// the response fills the kernel buffers; without a send timeout and the
// stop()-side connection shutdown, send_all() blocks forever and stop()'s
// join hangs. Registered LAST in this binary: the oversized text extension
// below cannot be unregistered.
TEST(ScrapeServerRobustness, WedgedClientDoesNotHangStop) {
  set_metrics_enabled(true);
  // A response far bigger than the combined socket buffers, so send() must
  // actually block on the unread peer rather than fire-and-forget.
  Registry::global().add_text_extension(
      [] { return std::string(32u << 20, '#'); });

  ScrapeServer server;
  const int port = server.start(0);
  ASSERT_GT(port, 0);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 1;  // clamp the receive window before connecting
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const std::string req = "GET /metrics HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  // Give the server time to accept and wedge mid-send; never read.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto before = std::chrono::steady_clock::now();
  server.stop();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - before)
          .count();
  EXPECT_FALSE(server.running());
  EXPECT_LT(seconds, 8.0) << "stop() hung on the wedged connection";
  ::close(fd);
  set_metrics_enabled(false);
}

}  // namespace
}  // namespace sora::obs
