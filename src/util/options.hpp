// Tiny CLI/environment option parser used by the bench and example binaries.
// Flags take the form --name=value or --name value; booleans accept bare
// --name. Unknown flags are an error (fail fast on typos). Environment
// fallbacks let `REPRO_FULL=1 ./bench_fig5_cost` select the paper-scale run.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sora::util {

class Options {
 public:
  Options() = default;

  /// Parse argv; throws CheckError on malformed input. `known` lists the
  /// accepted flag names (without leading dashes).
  static Options parse(int argc, const char* const* argv,
                       const std::vector<std::string>& known);

  bool has(const std::string& name) const;

  std::string get_string(const std::string& name,
                         const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  long get_int(const std::string& name, long fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional arguments (non-flag argv entries).
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

/// Environment helpers (nullopt if unset or empty).
std::optional<std::string> env_string(const std::string& name);
bool env_flag(const std::string& name);  // truthy: "1", "true", "yes", "on"

}  // namespace sora::util
