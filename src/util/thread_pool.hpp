// Fixed-size thread pool with a shared queue, plus blocking parallel_for
// helpers and waitable task groups. The experiment harness parallelises
// across sweep points, and the decomposed P2 pipeline fans per-block solves
// out here; the monolithic numerical solvers themselves stay single-threaded
// for reproducibility.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sora::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task; it runs on some worker thread.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// True when the calling thread is a pool worker executing a task. Nested
  /// fan-outs consult this and run inline instead of blocking a worker on
  /// its own pool (which could deadlock).
  static bool in_worker();

  /// Process-wide shared pool (lazily created, SORA_THREADS env overrides
  /// the size).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// A waitable group of tasks on a pool: run() enqueues, wait() blocks until
/// every task run so far has finished and rethrows the first captured
/// exception. Unlike ThreadPool::wait_idle(), waiting is scoped to THIS
/// group, so independent groups can share one pool without waiting on each
/// other's work. Nested use (run() from inside a pool worker) executes the
/// task inline, so a task may itself own a TaskGroup. A group is reusable
/// after wait() returns. Not thread-safe for concurrent run()/wait() from
/// different client threads.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool = ThreadPool::shared()) : pool_(pool) {}
  ~TaskGroup() { wait_no_throw(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueue `fn` (or run it inline on single-thread pools and when already
  /// inside a pool worker). Exceptions are captured for the next wait().
  void run(std::function<void()> fn);

  /// Block until every task run so far has finished; rethrow the first
  /// captured exception. The group is reusable afterwards.
  void wait();

 private:
  void wait_no_throw();

  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable done_cv_;
  std::size_t pending_ = 0;
  std::exception_ptr first_error_;
};

/// How parallel_for carves its range into tasks.
///
/// kStatic cuts the range into fixed `grain`-sized chunks up front — lowest
/// overhead, but with heterogeneous per-index costs the largest item lands in
/// some chunk whose unlucky worker serializes the tail while the rest of the
/// pool idles. kGuided hands out chunks on demand from a shared cursor,
/// starting large and shrinking toward `grain` as the range drains, so
/// expensive indices stop stalling the batch; the calling thread also
/// participates. Use kGuided when per-index work varies a lot (e.g. per-block
/// solves over SLA groups of very different sizes).
enum class ForSchedule { kStatic, kGuided };

/// Runs body(i) for i in [begin, end) across the shared pool; blocks until
/// done. Exceptions from body are captured and the first one rethrown.
/// grain controls how many consecutive indices each task takes (the minimum
/// chunk under kGuided).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1,
                  ForSchedule schedule = ForSchedule::kStatic);

}  // namespace sora::util
