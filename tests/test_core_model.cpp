// Cost accounting + P1 window LP tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cost.hpp"
#include "core/p1_model.hpp"
#include "util/rng.hpp"

namespace sora::core {
namespace {

using cloudnet::InstanceConfig;
using cloudnet::WorkloadTrace;

Instance tiny_instance(std::size_t horizon, double reconfig_weight,
                       std::uint64_t seed = 1, std::size_t k = 2) {
  util::Rng rng(seed);
  const WorkloadTrace trace = cloudnet::wikipedia_like(horizon, rng);
  InstanceConfig cfg;
  cfg.num_tier2 = 4;
  cfg.num_tier1 = 6;
  cfg.sla_k = k;
  cfg.reconfig_weight = reconfig_weight;
  cfg.seed = seed;
  return cloudnet::build_instance(cfg, trace);
}

TEST(Cost, Tier2TotalsAggregateByCloud) {
  const Instance inst = tiny_instance(4, 10.0);
  Vec x(inst.num_edges(), 1.0);
  const Vec totals = tier2_totals(inst, x);
  double sum = 0.0;
  for (double v : totals) sum += v;
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(inst.num_edges()));
  for (std::size_t i = 0; i < inst.num_tier2(); ++i)
    EXPECT_DOUBLE_EQ(totals[i],
                     static_cast<double>(inst.edges_of_tier2[i].size()));
}

TEST(Cost, ReconfigurationChargesOnlyIncreases) {
  const Instance inst = tiny_instance(4, 7.0);
  Allocation a = Allocation::zeros(inst.num_edges());
  Allocation b = Allocation::zeros(inst.num_edges());
  // Increase edge 0's x by 2 and decrease edge 1's y (no charge for y drop).
  b.x[0] = 2.0;
  a.y[1] = 3.0;
  const std::size_t i0 = inst.edges[0].tier2;
  EXPECT_NEAR(reconfiguration_cost(inst, a, b),
              inst.tier2_reconfig[i0] * 2.0, 1e-12);
  // Reverse direction: y grows by 3, x drops by 2 (x drop free).
  EXPECT_NEAR(reconfiguration_cost(inst, b, a), inst.edge_reconfig[1] * 3.0,
              1e-12);
}

TEST(Cost, ReconfigurationAggregatesXWithinCloud) {
  // Moving x between two edges of the SAME tier-2 cloud is free (the paper
  // charges the aggregate sum per cloud).
  const Instance inst = tiny_instance(4, 5.0);
  std::size_t cloud = inst.num_tier2();
  std::size_t e1 = 0, e2 = 0;
  for (std::size_t i = 0; i < inst.num_tier2(); ++i)
    if (inst.edges_of_tier2[i].size() >= 2) {
      cloud = i;
      e1 = inst.edges_of_tier2[i][0];
      e2 = inst.edges_of_tier2[i][1];
      break;
    }
  ASSERT_LT(cloud, inst.num_tier2()) << "need a cloud with 2+ edges";
  Allocation a = Allocation::zeros(inst.num_edges());
  Allocation b = Allocation::zeros(inst.num_edges());
  a.x[e1] = 2.0;
  b.x[e2] = 2.0;
  EXPECT_DOUBLE_EQ(reconfiguration_cost(inst, a, b), 0.0);
}

TEST(Cost, TotalIsSumOfSlots) {
  const Instance inst = tiny_instance(3, 10.0);
  Trajectory traj;
  for (std::size_t t = 0; t < 3; ++t) {
    Allocation a = Allocation::zeros(inst.num_edges());
    const auto split = inst.even_split(t);
    a.x = split;
    a.y = split;
    traj.slots.push_back(a);
  }
  const CostBreakdown cost = total_cost(inst, traj);
  const auto curve = cumulative_cost(inst, traj);
  EXPECT_NEAR(curve.back(), cost.total(), 1e-9);
  EXPECT_EQ(curve.size(), 3u);
  EXPECT_GT(cost.allocation, 0.0);
  EXPECT_GT(cost.reconfiguration, 0.0);  // first slot ramps up from zero
}

TEST(Cost, EvenSplitIsFeasible) {
  const Instance inst = tiny_instance(5, 10.0);
  Trajectory traj;
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    Allocation a = Allocation::zeros(inst.num_edges());
    a.x = inst.even_split(t);
    a.y = a.x;
    traj.slots.push_back(a);
  }
  EXPECT_TRUE(is_feasible(inst, traj, 1e-9));
}

TEST(Cost, ViolationDetectsUnderCoverage) {
  const Instance inst = tiny_instance(2, 10.0);
  Allocation a = Allocation::zeros(inst.num_edges());
  const double v = slot_violation(inst, 0, a);
  EXPECT_NEAR(v, 1.0, 0.5);  // roughly the per-tier-1 demand (peak-1 trace)
}

TEST(P1Model, OneShotCoversDemandExactly) {
  const Instance inst = tiny_instance(6, 10.0);
  const Allocation zero = Allocation::zeros(inst.num_edges());
  const Allocation a =
      solve_one_shot(inst, InputSeries::truth(inst), 0, zero);
  EXPECT_LE(slot_violation(inst, 0, a), 1e-7);
  // Greedy allocates no more than demand in aggregate coverage terms: the
  // min(x, y) coverage should match demand almost exactly.
  for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
    double covered = 0.0;
    for (const std::size_t e : inst.edges_of_tier1[j])
      covered += std::min(a.x[e], a.y[e]);
    EXPECT_NEAR(covered, inst.demand[0][j], 1e-6);
  }
}

TEST(P1Model, OfflineBeatsGreedySequence) {
  const Instance inst = tiny_instance(10, 100.0, /*seed=*/3);
  Trajectory greedy;
  Allocation prev = Allocation::zeros(inst.num_edges());
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    prev = solve_one_shot(inst, InputSeries::truth(inst), t, prev);
    greedy.slots.push_back(prev);
  }
  const Trajectory offline = solve_offline(inst);
  EXPECT_TRUE(is_feasible(inst, offline, 1e-6));
  EXPECT_LE(total_cost(inst, offline).total(),
            total_cost(inst, greedy).total() + 1e-6);
}

TEST(P1Model, OfflineMatchesBruteWindowCombination) {
  // Offline over [0, T) must cost no more than any greedy/window hybrid.
  const Instance inst = tiny_instance(6, 50.0, /*seed=*/4);
  const Trajectory offline = solve_offline(inst);
  const Trajectory two_blocks = [&] {
    const Trajectory first =
        solve_p1_window(inst, InputSeries::truth(inst), 0, 3,
                        Allocation::zeros(inst.num_edges()));
    Trajectory combined = first;
    const Trajectory second = solve_p1_window(
        inst, InputSeries::truth(inst), 3, 6, first.slots.back());
    for (const auto& s : second.slots) combined.slots.push_back(s);
    return combined;
  }();
  EXPECT_LE(total_cost(inst, offline).total(),
            total_cost(inst, two_blocks).total() + 1e-6);
}

TEST(P1Model, PinnedTerminalIsRespected) {
  const Instance inst = tiny_instance(5, 20.0, /*seed=*/5);
  const Allocation zero = Allocation::zeros(inst.num_edges());
  // Pin the final slot to the even split.
  Allocation pin = Allocation::zeros(inst.num_edges());
  pin.x = inst.even_split(4);
  pin.y = pin.x;
  const Trajectory traj = solve_p1_window(inst, InputSeries::truth(inst), 0,
                                          5, zero, &pin);
  ASSERT_EQ(traj.horizon(), 5u);
  for (std::size_t e = 0; e < inst.num_edges(); ++e) {
    EXPECT_NEAR(traj.slots[4].x[e], pin.x[e], 1e-7);
    EXPECT_NEAR(traj.slots[4].y[e], pin.y[e], 1e-7);
  }
  EXPECT_TRUE(is_feasible(inst, traj, 1e-6));
}

TEST(P1Model, HigherReconfigWeightSmoothsOffline) {
  // With a huge reconfiguration price the offline optimum's aggregate
  // allocation becomes flatter (fewer ups and downs) than with a tiny one.
  const Instance cheap = tiny_instance(12, 0.1, /*seed=*/6);
  const Instance dear = tiny_instance(12, 1000.0, /*seed=*/6);
  auto variation = [](const Instance& inst, const Trajectory& traj) {
    double var = 0.0;
    Vec prev(inst.num_tier2(), 0.0);
    for (const auto& slot : traj.slots) {
      const Vec totals = tier2_totals(inst, slot.x);
      for (std::size_t i = 0; i < totals.size(); ++i)
        var += std::fabs(totals[i] - prev[i]);
      prev = totals;
    }
    return var;
  };
  const double v_cheap = variation(cheap, solve_offline(cheap));
  const double v_dear = variation(dear, solve_offline(dear));
  EXPECT_LT(v_dear, v_cheap);
}

}  // namespace
}  // namespace sora::core
