file(REMOVE_RECURSE
  "CMakeFiles/test_oracle_sweep.dir/test_oracle_sweep.cpp.o"
  "CMakeFiles/test_oracle_sweep.dir/test_oracle_sweep.cpp.o.d"
  "test_oracle_sweep"
  "test_oracle_sweep.pdb"
  "test_oracle_sweep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oracle_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
