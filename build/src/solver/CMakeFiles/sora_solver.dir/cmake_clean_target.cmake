file(REMOVE_RECURSE
  "libsora_solver.a"
)
