// Sparse normal-equations property suite: with the density switch forced on
// (sparse_min_dim = 1, sparse_max_density = 1), the symbolic-once sparse
// Cholesky path must agree with the dense reference on real P2 solves
// across all six generated regimes, reuse its symbolic analysis across a
// multi-slot ROA run, and survive fault-injected runs through the
// resilience chain.
#include <gtest/gtest.h>

#include <cmath>

#include "core/p2_subproblem.hpp"
#include "core/roa.hpp"
#include "obs/obs.hpp"
#include "testing/fault_injection.hpp"
#include "testing/generator.hpp"

namespace sora::testing {
namespace {

core::RoaOptions forced_sparse_options() {
  core::RoaOptions o;
  o.ipm.sparse_min_dim = 1;
  o.ipm.sparse_max_density = 1.0;
  return o;
}

struct MetricsOn {
  MetricsOn() { obs::set_metrics_enabled(true); }
  ~MetricsOn() { obs::set_metrics_enabled(false); }
};

TEST(PropertySparseNormal, ForcedSparseMatchesDenseAcrossRegimes) {
  constexpr std::uint64_t kSeedsPerRegime = 3;
  for (const Regime regime : kAllRegimes) {
    for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
      GeneratorConfig cfg;
      cfg.regime = regime;
      cfg.seed = seed;
      SCOPED_TRACE(cfg.describe());
      const auto inst = generate_instance(cfg);

      core::RoaOptions dense_opts;
      dense_opts.use_sparse = false;
      dense_opts.ipm.tol = 1e-9;
      core::RoaOptions sparse_opts = forced_sparse_options();
      sparse_opts.ipm.tol = 1e-9;

      const core::InputSeries inputs = core::InputSeries::truth(inst);
      core::Allocation prev = core::Allocation::zeros(inst.num_edges());
      const std::size_t slots = std::min<std::size_t>(inst.horizon, 2);
      for (std::size_t t = 0; t < slots; ++t) {
        const core::P2Solution a =
            core::solve_p2(inst, inputs, t, prev, dense_opts);
        const core::P2Solution b =
            core::solve_p2(inst, inputs, t, prev, sparse_opts);
        EXPECT_NEAR(a.objective, b.objective, 1e-6) << "t=" << t;
        for (std::size_t e = 0; e < inst.num_edges(); ++e) {
          EXPECT_NEAR(a.alloc.x[e], b.alloc.x[e], 1e-6) << "x " << e;
          EXPECT_NEAR(a.alloc.y[e], b.alloc.y[e], 1e-6) << "y " << e;
          EXPECT_NEAR(a.alloc.z[e], b.alloc.z[e], 1e-6) << "z " << e;
        }
        prev = a.alloc;
      }
    }
  }
}

TEST(PropertySparseNormal, SymbolicCacheReusedAcrossSlots) {
  MetricsOn guard;
  auto& reg = obs::Registry::global();
  auto& builds = reg.counter("sora_ipm_symbolic_builds");
  auto& reuse = reg.counter("sora_ipm_symbolic_reuse");

  GeneratorConfig cfg;
  cfg.regime = Regime::kSmooth;
  cfg.seed = 7;
  const auto inst = generate_instance(cfg);
  ASSERT_GE(inst.horizon, 2u) << "need a multi-slot chain for reuse";

  const auto builds0 = builds.value();
  const auto reuse0 = reuse.value();
  const core::RoaRun run = core::run_roa(inst, forced_sparse_options());
  ASSERT_EQ(run.trajectory.horizon(), inst.horizon);
  EXPECT_TRUE(run.healthy());
  // One analysis for the structure, then every later slot of the workspace
  // chain hits the cache.
  EXPECT_GT(builds.value(), builds0);
  EXPECT_GT(reuse.value(), reuse0);
}

TEST(PropertySparseNormal, ForcedSparseSurvivesFaultInjection) {
  constexpr std::uint64_t kSeedsPerRegime = 2;
  for (const Regime regime : kAllRegimes) {
    for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
      GeneratorConfig cfg;
      cfg.regime = regime;
      cfg.seed = seed;
      SCOPED_TRACE(cfg.describe());
      const auto inst = generate_instance(cfg);

      FaultPlan plan;
      plan.fault_rate = 0.4;
      plan.seed = 1000 * seed + static_cast<std::uint64_t>(regime);
      plan.forced_attempts = 1;
      FaultInjector injector(plan);

      const core::RoaRun run = core::run_roa(inst, forced_sparse_options());
      ASSERT_EQ(run.trajectory.horizon(), inst.horizon);
      EXPECT_TRUE(std::isfinite(run.cost.total()));
    }
  }
}

}  // namespace
}  // namespace sora::testing
