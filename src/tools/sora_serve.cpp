// sora_serve — long-lived streaming allocation daemon.
//
// Reads workload ticks (serve/tick.hpp wire format) from a file, stdin, or
// a loopback TCP socket, runs the warm-started per-slot P2 solve against a
// persistent workspace, and publishes one line per served slot:
//
//   slot <t> hash=<hex> cost=<c> cum=<c> backend=<b> attempts=<n>
//     degraded=<0|1> miss=<0|1> latency_ms=<l>     (one line per slot)
//
// Fields after (and including) `miss=` are timing-dependent; the
// differential restore check strips them (see tests/serve_smoke.sh).
//
//   sora_serve --workload wikipedia --hours 48 --ticks trace.txt
//   sora_serve --listen 7071 --snapshot state.snap --snapshot-every 10
//   sora_serve --restore --snapshot state.snap --ticks -
//
// Flags (instance construction matches sora_cli):
//   --workload wikipedia|worldcup  --trace FILE  --hours T
//   --tier2 I --tier1 J --k K --b W --eps E --model-tier1 --seed S
// serving:
//   --ticks FILE          tick source; "-" = stdin            [-]
//   --listen PORT         accept loopback tick streams instead of --ticks
//                         (one client at a time; 0 = ephemeral port)
//   --requests-per-unit R raw requests per unit of lambda     [1.0]
//   --slot-budget-ms B    deadline; a late solve is discarded and the slot
//                         re-routed to hold-and-repair (SORA_SLOT_BUDGET_MS)
//   --out FILE            per-slot output (default stdout)
//   --max-slots N         stop after serving N slots
// snapshots:
//   --snapshot PATH       snapshot file (atomic write-then-rename)
//   --snapshot-every N    auto-snapshot every N served slots
//   --restore             resume from --snapshot before serving; stale
//                         ticks (slot < resume point) are skipped
// observability:
//   --metrics-port P      live Prometheus scrape on 127.0.0.1:P
// test / CI harness:
//   --emit-ticks N        print N ticks derived from the instance's demand
//                         trace (slot cycling) and exit
//   --kill-after N        simulate a crash: after serving N slots, flush
//                         output and _Exit(137) without snapshotting
//   --tick-delay-ms D     sleep D ms after each served slot
#include <unistd.h>

#include <netinet/in.h>
#include <sys/socket.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "cloudnet/instance.hpp"
#include "cloudnet/workload.hpp"
#include "obs/obs.hpp"
#include "serve/daemon.hpp"
#include "serve/tick.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace {

using namespace sora;

core::Instance build(const util::Options& opts) {
  const std::uint64_t seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 42));
  const std::size_t hours =
      static_cast<std::size_t>(opts.get_int("hours", 120));
  cloudnet::WorkloadTrace trace;
  const std::string trace_path = opts.get_string("trace", "");
  if (!trace_path.empty()) {
    trace = cloudnet::load_csv_trace(trace_path);
    if (trace.hours() > hours && opts.has("hours")) trace.demand.resize(hours);
  } else {
    util::Rng rng(seed);
    const std::string kind = opts.get_string("workload", "wikipedia");
    trace = kind == "worldcup" ? cloudnet::worldcup_like(hours, rng)
                               : cloudnet::wikipedia_like(hours, rng);
  }

  cloudnet::InstanceConfig cfg;
  cfg.num_tier2 = static_cast<std::size_t>(opts.get_int("tier2", 6));
  cfg.num_tier1 = static_cast<std::size_t>(opts.get_int("tier1", 12));
  cfg.sla_k = static_cast<std::size_t>(opts.get_int("k", 1));
  cfg.reconfig_weight = opts.get_double("b", 1000.0);
  cfg.seed = seed;
  cfg.model_tier1 = opts.get_bool("model-tier1", false);
  return cloudnet::build_instance(cfg, trace);
}

// Line-at-a-time source over stdin, a file, or one loopback TCP client.
// next_line() returns false only at end-of-stream (for the socket source:
// after the client disconnects AND the listener is told not to re-accept).
class TickSource {
 public:
  virtual ~TickSource() = default;
  virtual bool next_line(std::string& line) = 0;
};

class StreamSource : public TickSource {
 public:
  explicit StreamSource(std::istream& in) : in_(in) {}
  bool next_line(std::string& line) override {
    return static_cast<bool>(std::getline(in_, line));
  }

 private:
  std::istream& in_;
};

class SocketSource : public TickSource {
 public:
  // Binds 127.0.0.1:port (0 = ephemeral). bound_port() < 0 on failure.
  explicit SocketSource(int port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return;
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
            0 ||
        ::listen(listen_fd_, 1) != 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0)
      bound_port_ = ntohs(bound.sin_port);
  }
  ~SocketSource() override {
    if (client_fd_ >= 0) ::close(client_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  int bound_port() const { return bound_port_; }

  bool next_line(std::string& line) override {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (client_fd_ < 0) {
        client_fd_ = ::accept(listen_fd_, nullptr, nullptr);
        if (client_fd_ < 0) return flush_tail(line);
      }
      char chunk[4096];
      const ssize_t n = ::read(client_fd_, chunk, sizeof chunk);
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      // Client gone: serve whatever partial line is left, then wait for
      // the next client. A `quit` line is the only graceful way out.
      ::close(client_fd_);
      client_fd_ = -1;
      if (!buffer_.empty()) return flush_tail(line);
    }
  }

 private:
  bool flush_tail(std::string& line) {
    if (buffer_.empty()) return false;
    line.swap(buffer_);
    buffer_.clear();
    return true;
  }
  int listen_fd_ = -1;
  int client_fd_ = -1;
  int bound_port_ = -1;
  std::string buffer_;
};

void print_slot(std::ostream& out, const serve::SlotResult& r) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(r.alloc_hash));
  char nums[96];
  std::snprintf(nums, sizeof nums, "cost=%.17g cum=%.17g", r.slot_cost,
                r.cumulative_cost);
  out << "slot " << r.slot << " hash=" << hex << ' ' << nums
      << " backend=" << r.backend << " attempts=" << r.attempts
      << " degraded=" << (r.degraded ? 1 : 0)
      << " miss=" << (r.deadline_miss ? 1 : 0) << " latency_ms=" << std::fixed
      << r.latency_seconds * 1e3 << "\n";
  out.unsetf(std::ios::floatfield);
  out.flush();
}

int emit_ticks(const core::Instance& inst, std::size_t count,
               double requests_per_unit) {
  std::vector<double> requests(inst.num_tier1());
  for (std::size_t t = 0; t < count; ++t) {
    const auto& row = inst.demand[t % inst.horizon];
    for (std::size_t j = 0; j < requests.size(); ++j)
      requests[j] = row[j] * requests_per_unit;
    std::cout << serve::format_tick_line(t, requests) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sora_serve [instance flags] [serving flags]\n"
                   "see the header comment of src/tools/sora_serve.cpp and\n"
                   "docs/SERVING.md for the full contract\n";
      return 0;
    }
  }
  const auto opts = util::Options::parse(
      argc, argv,
      {"workload", "trace", "hours", "tier2", "tier1", "k", "b", "eps",
       "model-tier1", "seed", "ticks", "listen", "requests-per-unit",
       "slot-budget-ms", "out", "max-slots", "snapshot", "snapshot-every",
       "restore", "metrics-port", "emit-ticks", "kill-after",
       "tick-delay-ms"});

  const core::Instance inst = build(opts);
  const auto report = cloudnet::validate_instance(inst);
  if (!report.ok) {
    std::cerr << "instance invalid: " << report.problems[0] << "\n";
    return 1;
  }

  serve::ServeOptions serve_opts;
  serve_opts.roa.eps = serve_opts.roa.eps_prime = opts.get_double("eps", 1e-2);
  serve_opts.roa.slo.budget_seconds =
      opts.has("slot-budget-ms")
          ? opts.get_double("slot-budget-ms", 0.0) * 1e-3
          : obs::default_slot_budget_seconds();
  serve_opts.requests_per_unit = opts.get_double("requests-per-unit", 1.0);
  serve_opts.snapshot_path = opts.get_string("snapshot", "");
  serve_opts.snapshot_every =
      static_cast<std::size_t>(opts.get_int("snapshot-every", 0));

  if (opts.has("emit-ticks"))
    return emit_ticks(inst,
                      static_cast<std::size_t>(opts.get_int("emit-ticks", 0)),
                      serve_opts.requests_per_unit);

  if (opts.has("metrics-port")) {
    obs::set_metrics_enabled(true);
    const int bound = obs::start_global_scrape_server(
        static_cast<int>(opts.get_int("metrics-port", 0)));
    if (bound < 0) {
      std::cerr << "failed to start scrape server\n";
      return 1;
    }
    std::cerr << "metrics: live scrape at http://127.0.0.1:" << bound
              << "/metrics\n";
  }

  serve::ServeDaemon daemon(inst, serve_opts);
  if (opts.get_bool("restore", false)) {
    std::string error;
    if (!daemon.restore(&error)) {
      std::cerr << "restore failed: " << error << "\n";
      return 1;
    }
    std::cerr << "restored; resuming at slot " << daemon.next_slot() << "\n";
  }

  std::ofstream out_file;
  const std::string out_path = opts.get_string("out", "");
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::app);
    if (!out_file) {
      std::cerr << "cannot open --out " << out_path << "\n";
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  std::ifstream tick_file;
  std::unique_ptr<TickSource> source;
  if (opts.has("listen")) {
    auto sock =
        std::make_unique<SocketSource>(static_cast<int>(opts.get_int("listen", 0)));
    if (sock->bound_port() < 0) {
      std::cerr << "cannot listen on 127.0.0.1:" << opts.get_int("listen", 0)
                << "\n";
      return 1;
    }
    std::cerr << "listening for ticks on 127.0.0.1:" << sock->bound_port()
              << "\n";
    source = std::move(sock);
  } else {
    const std::string ticks = opts.get_string("ticks", "-");
    if (ticks != "-") {
      tick_file.open(ticks);
      if (!tick_file) {
        std::cerr << "cannot open --ticks " << ticks << "\n";
        return 1;
      }
    }
    source = std::make_unique<StreamSource>(ticks == "-" ? std::cin
                                                         : tick_file);
  }

  const std::size_t max_slots =
      static_cast<std::size_t>(opts.get_int("max-slots", 0));
  const std::size_t kill_after =
      static_cast<std::size_t>(opts.get_int("kill-after", 0));
  const long tick_delay_ms = opts.get_int("tick-delay-ms", 0);

  std::size_t served = 0;
  std::string line;
  while (source->next_line(line)) {
    serve::Tick tick;
    std::string error;
    if (!serve::parse_tick_line(line, inst.num_tier1(), tick, &error)) {
      std::cerr << "bad tick line: " << error << "\n";
      continue;
    }
    if (tick.kind == serve::Tick::Kind::kIgnore) continue;
    if (tick.kind == serve::Tick::Kind::kQuit) break;
    if (tick.kind == serve::Tick::Kind::kSnapshot) {
      std::string snap_error;
      if (!daemon.write_snapshot_now(&snap_error))
        std::cerr << "snapshot failed: " << snap_error << "\n";
      continue;
    }
    if (tick.slot < daemon.next_slot()) continue;  // restore replay
    if (tick.slot > daemon.next_slot())
      std::cerr << "warning: tick slot " << tick.slot
                << " skips ahead of next slot " << daemon.next_slot()
                << " (serving as slot " << daemon.next_slot() << ")\n";

    print_slot(out, daemon.step(tick));
    ++served;

    if (tick_delay_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(tick_delay_ms));
    if (kill_after > 0 && served >= kill_after) {
      // Crash simulation for the restore CI check: flush what a real
      // failure would have already published, then die without the
      // graceful-shutdown snapshot below.
      out.flush();
      std::_Exit(137);
    }
    if (max_slots > 0 && served >= max_slots) break;
  }

  if (!serve_opts.snapshot_path.empty()) {
    std::string snap_error;
    if (!daemon.write_snapshot_now(&snap_error))
      std::cerr << "final snapshot failed: " << snap_error << "\n";
  }

  const serve::ServeStats& stats = daemon.stats();
  std::cerr << "served " << stats.slots << " slots, cost " << stats.cost.total()
            << " (degraded " << stats.degraded_slots << ", fallback "
            << stats.fallback_slots << ", deadline misses "
            << stats.deadline_misses << ", snapshots "
            << stats.snapshots_written << ")\n";
  obs::flush_exports();
  return 0;
}
