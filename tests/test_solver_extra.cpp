// Additional solver coverage: builder validation, option paths (refactor
// cadence, acceptance factors, barrier budgets), and cross-solver sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "solver/ipm.hpp"
#include "solver/lp_solve.hpp"
#include "solver/pdhg.hpp"
#include "solver/simplex.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sora::solver {
namespace {

TEST(LpBuilder, RejectsCrossedBounds) {
  LpBuilder b;
  EXPECT_THROW(b.add_variable(2.0, 1.0, 0.0), util::CheckError);
  b.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(b.add_constraint(3.0, 2.0, {{0, 1.0}}), util::CheckError);
}

TEST(LpBuilder, RejectsUnknownVariableInRow) {
  LpBuilder b;
  b.add_variable(0.0, 1.0, 0.0);
  EXPECT_THROW(b.add_ge({{5, 1.0}}, 0.0), util::CheckError);
}

TEST(LpBuilder, AddCostAccumulates) {
  LpBuilder b;
  const auto x = b.add_variable(0.0, 10.0, 1.0);
  b.add_cost(x, 2.5);
  b.add_ge({{x, 1.0}}, 4.0);
  const auto sol = solve_simplex(b.build());
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.objective, 3.5 * 4.0, 1e-9);
}

TEST(LpBuilder, NamesAreRetrievable) {
  LpBuilder b;
  b.add_variable(0.0, 1.0, 0.0, "alloc_x");
  b.add_ge({{0, 1.0}}, 0.0, "coverage");
  EXPECT_EQ(b.var_name(0), "alloc_x");
  EXPECT_EQ(b.row_name(0), "coverage");
}

TEST(LpModel, MaxViolationMeasuresWorstBreach) {
  LpBuilder b;
  const auto x = b.add_variable(0.0, 5.0, 1.0);
  b.add_ge({{x, 1.0}}, 3.0);
  const LpModel model = b.build();
  EXPECT_DOUBLE_EQ(model.max_violation({4.0}), 0.0);
  EXPECT_DOUBLE_EQ(model.max_violation({1.0}), 2.0);   // row breach
  EXPECT_DOUBLE_EQ(model.max_violation({7.0}), 2.0);   // bound breach
  EXPECT_DOUBLE_EQ(model.max_violation({-1.0}), 4.0);  // worst of both
}

TEST(Simplex, FrequentRefactorizationMatchesDefault) {
  // Exercise the LU refactorization path by forcing it every 2 pivots.
  util::Rng rng(7);
  LpBuilder b;
  const std::size_t n = 12;
  for (std::size_t j = 0; j < n; ++j)
    b.add_variable(0.0, 5.0, rng.uniform(0.5, 2.0));
  for (std::size_t i = 0; i < 10; ++i) {
    std::vector<LinTerm> terms;
    for (std::size_t j = 0; j < n; ++j)
      if (rng.uniform() < 0.5) terms.push_back({j, rng.uniform(0.2, 1.0)});
    if (terms.empty()) terms.push_back({0, 1.0});
    b.add_ge(terms, rng.uniform(0.2, 2.0));
  }
  const LpModel model = b.build();
  SimplexOptions frequent;
  frequent.refactor_interval = 2;
  const auto a = solve_simplex(model);
  const auto c = solve_simplex(model, frequent);
  ASSERT_TRUE(a.ok() && c.ok());
  EXPECT_NEAR(a.objective, c.objective, 1e-8 * (1.0 + std::fabs(a.objective)));
}

TEST(Pdhg, AcceptFactorRescuesTightBudget) {
  // With a tiny iteration budget the strict solver reports a limit; the
  // relaxed acceptance turns a close-enough point into success.
  LpBuilder b;
  util::Rng rng(5);
  const std::size_t n = 15;
  for (std::size_t j = 0; j < n; ++j)
    b.add_variable(0.0, 10.0, rng.uniform(0.5, 2.0));
  for (std::size_t i = 0; i < 12; ++i) {
    std::vector<LinTerm> terms;
    for (std::size_t j = 0; j < n; ++j)
      if (rng.uniform() < 0.4) terms.push_back({j, rng.uniform(0.2, 1.0)});
    if (terms.empty()) terms.push_back({0, 1.0});
    b.add_ge(terms, rng.uniform(0.5, 3.0));
  }
  const LpModel model = b.build();
  PdhgOptions strict;
  strict.eps_rel = 1e-12;  // unreachable in the budget
  strict.eps_abs = 0.0;
  strict.max_iterations = 48;
  strict.restart_check_interval = 16;
  const auto hard = solve_pdhg(model, strict);
  EXPECT_EQ(hard.status, SolveStatus::kIterationLimit);

  PdhgOptions relaxed = strict;
  relaxed.accept_factor = 1e12;
  const auto ok = solve_pdhg(model, relaxed);
  EXPECT_EQ(ok.status, SolveStatus::kOptimal);
}

TEST(Ipm, AcceptableGapOnTinyBudget) {
  // Quadratic projection with a minuscule Newton budget: the gap-based
  // acceptance still reports success with a near-optimal point.
  class Quad : public ConvexObjective {
   public:
    double value(const linalg::Vec& x) const override {
      return 0.5 * (x[0] - 2.0) * (x[0] - 2.0);
    }
    linalg::Vec gradient(const linalg::Vec& x) const override {
      return {x[0] - 2.0};
    }
    linalg::Matrix hessian(const linalg::Vec&) const override {
      return linalg::Matrix::identity(1);
    }
  } f;
  linalg::Matrix g(2, 1, 0.0);
  g(0, 0) = 1.0;   // x <= 10
  g(1, 0) = -1.0;  // x >= 0
  IpmOptions opts;
  opts.max_newton_steps = 25;
  opts.acceptable_gap = 1e-2;
  const auto r = solve_barrier(f, g, {10.0, 0.0}, {1.0}, opts);
  ASSERT_TRUE(r.ok()) << r.detail;
  EXPECT_NEAR(r.x[0], 2.0, 0.05);
}

TEST(LpSolve, PresolvePathMatchesDirect) {
  LpBuilder b;
  const auto fixed = b.add_variable(2.0, 2.0, 3.0);
  const auto y = b.add_variable(0.0, kInf, 1.0);
  b.add_ge({{fixed, 1.0}, {y, 1.0}}, 6.0);
  const LpModel model = b.build();
  LpSolveOptions with;
  with.presolve = true;
  const auto a = solve_lp(model);
  const auto c = solve_lp(model, with);
  ASSERT_TRUE(a.ok() && c.ok());
  EXPECT_NEAR(a.objective, c.objective, 1e-9);
  EXPECT_NEAR(c.x[fixed], 2.0, 1e-12);
}

TEST(LpSolve, PresolveDetectsInfeasibility) {
  LpBuilder b;
  const auto x = b.add_variable(1.0, 1.0, 0.0);
  b.add_ge({{x, 1.0}}, 5.0);
  LpSolveOptions with;
  with.presolve = true;
  const auto sol = solve_lp(b.build(), with);
  EXPECT_EQ(sol.status, SolveStatus::kPrimalInfeasible);
}

// Cross-solver sweep on equality-constrained transport-like LPs.
class TransportSweep : public ::testing::TestWithParam<int> {};

TEST_P(TransportSweep, SimplexAndPdhgAgree) {
  util::Rng rng(4000 + GetParam());
  const std::size_t sources = 3 + GetParam() % 3;
  const std::size_t sinks = 3 + GetParam() % 4;
  LpBuilder b;
  // Shipment variables.
  std::vector<std::vector<std::size_t>> ship(sources,
                                             std::vector<std::size_t>(sinks));
  for (std::size_t s = 0; s < sources; ++s)
    for (std::size_t d = 0; d < sinks; ++d)
      ship[s][d] = b.add_variable(0.0, kInf, rng.uniform(0.5, 3.0));
  // Balanced supplies/demands.
  std::vector<double> supply(sources), need(sinks, 0.0);
  double total = 0.0;
  for (std::size_t s = 0; s < sources; ++s) {
    supply[s] = rng.uniform(1.0, 4.0);
    total += supply[s];
  }
  for (std::size_t d = 0; d < sinks; ++d) need[d] = total / sinks;
  for (std::size_t s = 0; s < sources; ++s) {
    std::vector<LinTerm> terms;
    for (std::size_t d = 0; d < sinks; ++d) terms.push_back({ship[s][d], 1.0});
    b.add_eq(terms, supply[s]);
  }
  for (std::size_t d = 0; d < sinks; ++d) {
    std::vector<LinTerm> terms;
    for (std::size_t s = 0; s < sources; ++s) terms.push_back({ship[s][d], 1.0});
    b.add_eq(terms, need[d]);
  }
  const double gap = cross_check_gap(b.build());
  EXPECT_LT(gap, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TransportSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace sora::solver
