file(REMOVE_RECURSE
  "CMakeFiles/wikipedia_week.dir/wikipedia_week.cpp.o"
  "CMakeFiles/wikipedia_week.dir/wikipedia_week.cpp.o.d"
  "wikipedia_week"
  "wikipedia_week.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikipedia_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
