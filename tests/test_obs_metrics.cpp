// sora_obs registry: concurrency exactness, bucket boundaries, exporters.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace sora::obs {
namespace {

// Every test that records must enable the global toggle; restore on exit so
// test order never matters.
struct MetricsOn {
  MetricsOn() { set_metrics_enabled(true); }
  ~MetricsOn() { set_metrics_enabled(false); }
};

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  MetricsOn on;
  Counter& c = Registry::global().counter("test_concurrent_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsCounter, DisabledIncrementsAreDropped) {
  set_metrics_enabled(false);
  Counter& c = Registry::global().counter("test_disabled_counter");
  c.reset();
  c.inc(5);
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsGauge, SetAddAndConcurrentAdd) {
  MetricsOn on;
  Gauge& g = Registry::global().gauge("test_gauge");
  g.reset();
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  g.reset();
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w)
    workers.emplace_back([&g] {
      for (int i = 0; i < 1000; ++i) g.add(1.0);
    });
  for (auto& w : workers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), 4000.0);
}

TEST(ObsHistogram, BucketBoundariesAreInclusiveUpper) {
  MetricsOn on;
  Histogram& h = Registry::global().histogram("test_bucket_boundaries", "x",
                                              "", {1.0, 2.0, 4.0});
  h.reset();
  // Bucket k counts v <= bounds[k]; the boundary value itself lands in its
  // own bucket, not the next one.
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) h.observe(v);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(counts[1], 2u);  // 1.5, 2.0
  EXPECT_EQ(counts[2], 2u);  // 3.0, 4.0
  EXPECT_EQ(counts[3], 1u);  // 5.0 -> +Inf
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 5.0);
}

TEST(ObsHistogram, ConcurrentObservesKeepExactCount) {
  MetricsOn on;
  Histogram& h = Registry::global().histogram("test_concurrent_hist", "x", "",
                                              linear_buckets(0.0, 1.0, 8));
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w)
    workers.emplace_back([&h, w] {
      for (int i = 0; i < kPerThread; ++i)
        h.observe(static_cast<double>(w % 8));
    });
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t total = 0;
  for (const auto c : h.bucket_counts()) total += c;
  EXPECT_EQ(total, h.count());
}

TEST(ObsHistogram, RejectsBadBounds) {
  auto& reg = Registry::global();
  EXPECT_THROW(reg.histogram("test_bad_empty", "x", "", {}),
               util::CheckError);
  EXPECT_THROW(reg.histogram("test_bad_order", "x", "", {2.0, 1.0}),
               util::CheckError);
  EXPECT_THROW(reg.histogram("test_bad_dup", "x", "", {1.0, 1.0}),
               util::CheckError);
}

TEST(ObsBuckets, Generators) {
  const auto exp = exponential_buckets(1.0, 2.0, 4);
  EXPECT_EQ(exp, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const auto lin = linear_buckets(0.5, 0.25, 3);
  EXPECT_EQ(lin, (std::vector<double>{0.5, 0.75, 1.0}));
}

TEST(ObsRegistry, SameNameReturnsSameInstrument) {
  Counter& a = Registry::global().counter("test_same_handle");
  Counter& b = Registry::global().counter("test_same_handle");
  EXPECT_EQ(&a, &b);
}

TEST(ObsRegistry, KindMismatchThrows) {
  Registry::global().counter("test_kind_clash");
  EXPECT_THROW(Registry::global().gauge("test_kind_clash"), util::CheckError);
}

TEST(ObsRegistry, TextExportHasPrometheusShape) {
  MetricsOn on;
  auto& reg = Registry::global();
  Counter& c = reg.counter("test_text_counter", "a help line");
  Histogram& h =
      reg.histogram("test_text_hist", "seconds", "hist help", {1.0, 2.0});
  c.reset();
  h.reset();
  c.inc(3);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = reg.render_text();
  EXPECT_NE(text.find("# HELP test_text_counter a help line"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_text_counter counter"), std::string::npos);
  EXPECT_NE(text.find("test_text_counter 3"), std::string::npos);
  // Cumulative le buckets: 1 obs <= 1, 2 obs <= 2, 3 total.
  EXPECT_NE(text.find("test_text_hist_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_text_hist_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("test_text_hist_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_text_hist_count 3"), std::string::npos);
}

TEST(ObsRegistry, JsonExportParsesAndMatches) {
  MetricsOn on;
  auto& reg = Registry::global();
  Counter& c = reg.counter("test_json_counter");
  Histogram& h = reg.histogram("test_json_hist", "seconds", "", {1.0, 2.0});
  c.reset();
  h.reset();
  c.inc(7);
  h.observe(1.5);
  const json::Value doc = json::parse(reg.render_json());
  bool saw_counter = false, saw_hist = false;
  for (const json::Value& metric : doc.at("metrics").as_array()) {
    const std::string& name = metric.at("name").as_string();
    if (name == "test_json_counter") {
      saw_counter = true;
      EXPECT_EQ(metric.at("type").as_string(), "counter");
      EXPECT_DOUBLE_EQ(metric.at("value").as_number(), 7.0);
    } else if (name == "test_json_hist") {
      saw_hist = true;
      EXPECT_EQ(metric.at("type").as_string(), "histogram");
      EXPECT_DOUBLE_EQ(metric.at("count").as_number(), 1.0);
      EXPECT_DOUBLE_EQ(metric.at("sum").as_number(), 1.5);
      const auto& buckets = metric.at("buckets").as_array();
      ASSERT_EQ(buckets.size(), 3u);  // two bounds + +Inf
      EXPECT_DOUBLE_EQ(buckets[1].at("count").as_number(), 1.0);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

TEST(ObsRegistry, WriteFileRoundTrips) {
  MetricsOn on;
  auto& reg = Registry::global();
  reg.counter("test_write_counter").reset();
  reg.counter("test_write_counter").inc();
  const std::string path = ::testing::TempDir() + "sora_obs_metrics.json";
  reg.write_file(path, MetricsFormat::kJson);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NO_THROW(json::parse(body));
}

TEST(ObsFormat, ParseMetricsFormat) {
  EXPECT_EQ(parse_metrics_format("text"), MetricsFormat::kText);
  EXPECT_EQ(parse_metrics_format("prom"), MetricsFormat::kText);
  EXPECT_EQ(parse_metrics_format("prometheus"), MetricsFormat::kText);
  EXPECT_EQ(parse_metrics_format("json"), MetricsFormat::kJson);
  EXPECT_EQ(parse_metrics_format("anything"), MetricsFormat::kJson);
}

}  // namespace
}  // namespace sora::obs
