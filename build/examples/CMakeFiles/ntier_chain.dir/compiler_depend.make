# Empty compiler generated dependencies file for ntier_chain.
# This may be replaced when dependencies are built.
