file(REMOVE_RECURSE
  "CMakeFiles/sora_util.dir/csv.cpp.o"
  "CMakeFiles/sora_util.dir/csv.cpp.o.d"
  "CMakeFiles/sora_util.dir/logging.cpp.o"
  "CMakeFiles/sora_util.dir/logging.cpp.o.d"
  "CMakeFiles/sora_util.dir/options.cpp.o"
  "CMakeFiles/sora_util.dir/options.cpp.o.d"
  "CMakeFiles/sora_util.dir/rng.cpp.o"
  "CMakeFiles/sora_util.dir/rng.cpp.o.d"
  "CMakeFiles/sora_util.dir/table.cpp.o"
  "CMakeFiles/sora_util.dir/table.cpp.o.d"
  "CMakeFiles/sora_util.dir/thread_pool.cpp.o"
  "CMakeFiles/sora_util.dir/thread_pool.cpp.o.d"
  "libsora_util.a"
  "libsora_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
