#include "obs/slo.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

namespace sora::obs {

namespace {

// log2(v / kMinValue) * 2 -> half-octave bucket index, clamped to the grid.
std::size_t bucket_of(double v) {
  if (!(v > SloDigest::kMinValue)) return 0;
  const double k = 2.0 * std::log2(v / SloDigest::kMinValue);
  if (k >= static_cast<double>(SloDigest::kBuckets - 1))
    return SloDigest::kBuckets - 1;
  return static_cast<std::size_t>(k);
}

double bucket_lower(std::size_t k) {
  return SloDigest::kMinValue * std::exp2(0.5 * static_cast<double>(k));
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed))
    ;
}

}  // namespace

SloDigest::SloDigest() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

void SloDigest::observe(double v) {
  if (!std::isfinite(v)) return;
  if (v < 0.0) v = 0.0;
  counts_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, v);
  atomic_max(max_, v);
}

double SloDigest::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based, nearest-rank with rounding).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(n) + 0.5));
  std::uint64_t cumulative = 0;
  for (std::size_t k = 0; k < kBuckets; ++k) {
    const std::uint64_t c = counts_[k].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (cumulative + c >= rank) {
      // Geometric interpolation across the bucket: fraction of the bucket's
      // observations at or below the target rank.
      const double frac =
          static_cast<double>(rank - cumulative) / static_cast<double>(c);
      const double lo = k == 0 ? kMinValue : bucket_lower(k);
      const double hi = bucket_lower(k + 1);
      const double v = lo * std::pow(hi / lo, frac);
      // Never report beyond the observed extreme (the top bucket is open).
      return std::min(v, max());
    }
    cumulative += c;
  }
  return max();
}

void SloDigest::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Process-global sora_slot_* metrics.

namespace {

struct SlotMetrics {
  Counter* slots;
  Counter* deadline_hits;
  Counter* deadline_misses;
  Counter* fallbacks;
  Counter* degraded;
  Histogram* fallback_depth;
  Gauge* budget;
  // Per-backend slot counters, registered on first sight of each name.
  std::mutex mu;
  std::map<std::string, Counter*> backend;
};

SloDigest g_digest;

SlotMetrics& slot_metrics() {
  static SlotMetrics* metrics = [] {
    auto& reg = Registry::global();
    auto* m = new SlotMetrics{
        &reg.counter("sora_slot_solves_total",
                     "Slot solves recorded by the SLO layer"),
        &reg.counter("sora_slot_deadline_hit_total",
                     "Slots that landed within the configured budget"),
        &reg.counter("sora_slot_deadline_miss_total",
                     "Slots that overran the configured budget"),
        &reg.counter("sora_slot_fallback_total",
                     "Slots produced by a non-primary backend"),
        &reg.counter("sora_slot_degraded_total",
                     "Slots served by graceful degradation"),
        &reg.histogram("sora_slot_fallback_depth", "attempts",
                       "Fallback-chain depth per slot",
                       linear_buckets(1.0, 1.0, 8)),
        &reg.gauge("sora_slot_budget_seconds",
                   "Configured per-slot deadline budget (0 = off)"),
        {},
        {},
    };
    reg.add_text_extension(render_slo_text);
    return m;
  }();
  return *metrics;
}

Counter& backend_counter(SlotMetrics& m, const char* name) {
  std::lock_guard<std::mutex> lock(m.mu);
  auto it = m.backend.find(name);
  if (it != m.backend.end()) return *it->second;
  Counter& c = Registry::global().counter(
      std::string("sora_slot_backend_") + name + "_total",
      "Slots whose decision came from this backend");
  m.backend.emplace(name, &c);
  return c;
}

}  // namespace

double default_slot_budget_seconds() {
  static const double budget = [] {
    const char* env = std::getenv("SORA_SLOT_BUDGET_MS");
    if (env == nullptr) return 0.0;
    const double ms = std::atof(env);
    return ms > 0.0 ? ms * 1e-3 : 0.0;
  }();
  return budget;
}

namespace detail {

void record_slot_sample_impl(const SlotSample& sample) {
  SlotMetrics& m = slot_metrics();
  g_digest.observe(sample.latency_seconds);
  m.slots->inc();
  m.fallback_depth->observe(static_cast<double>(sample.attempts));
  if (sample.fell_back) m.fallbacks->inc();
  if (sample.degraded) m.degraded->inc();
  if (sample.budget_seconds > 0.0) {
    m.budget->set(sample.budget_seconds);
    (sample.latency_seconds <= sample.budget_seconds ? m.deadline_hits
                                                     : m.deadline_misses)
        ->inc();
  }
  if (sample.backend_name != nullptr && sample.backend_name[0] != '\0')
    backend_counter(m, sample.backend_name).inc();
}

}  // namespace detail

const SloDigest& global_slot_digest() { return g_digest; }

void reset_global_slot_slo() { g_digest.reset(); }

std::string render_slo_text() {
  const SloDigest& d = g_digest;
  if (d.count() == 0) return "";
  char buf[128];
  std::ostringstream os;
  os << "# HELP sora_slot_latency_seconds Per-slot solve latency "
        "(streaming digest)\n"
     << "# TYPE sora_slot_latency_seconds summary\n";
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    std::snprintf(buf, sizeof buf,
                  "sora_slot_latency_seconds{quantile=\"%g\"} %.9g\n", q,
                  d.quantile(q));
    os << buf;
  }
  std::snprintf(buf, sizeof buf, "sora_slot_latency_seconds_sum %.9g\n",
                d.sum());
  os << buf;
  os << "sora_slot_latency_seconds_count " << d.count() << "\n";
  std::snprintf(buf, sizeof buf, "sora_slot_latency_max_seconds %.9g\n",
                d.max());
  os << "# TYPE sora_slot_latency_max_seconds gauge\n" << buf;
  return os.str();
}

// ---------------------------------------------------------------------------
// Per-run tracker.

SlotSloTracker::SlotSloTracker(const SlotSloOptions& options)
    : options_(options) {}

void SlotSloTracker::record(SlotSample sample) {
  sample.budget_seconds = options_.budget_seconds;
  digest_.observe(sample.latency_seconds);
  ++slots_;
  if (options_.budget_seconds > 0.0 &&
      sample.latency_seconds > options_.budget_seconds)
    ++deadline_misses_;
  if (sample.fell_back) ++fallback_slots_;
  if (sample.degraded) ++degraded_slots_;
  record_slot_sample(sample);  // global metrics; gated on metrics_enabled()
}

SlotSloReport SlotSloTracker::report() const {
  SlotSloReport r;
  r.slots = slots_;
  r.deadline_misses = deadline_misses_;
  r.fallback_slots = fallback_slots_;
  r.degraded_slots = degraded_slots_;
  r.budget_seconds = options_.budget_seconds;
  r.p50_seconds = digest_.quantile(0.50);
  r.p95_seconds = digest_.quantile(0.95);
  r.p99_seconds = digest_.quantile(0.99);
  r.max_seconds = digest_.max();
  r.mean_seconds = digest_.mean();
  return r;
}

}  // namespace sora::obs
