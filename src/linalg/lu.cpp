#include "linalg/lu.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sora::linalg {

std::optional<Lu> Lu::factor(const Matrix& a) {
  SORA_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot: largest |value| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::fabs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-13 || !std::isfinite(best)) return std::nullopt;
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(pivot, c));
      std::swap(perm[k], perm[pivot]);
    }
    const double inv = 1.0 / lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu(i, k) * inv;
      lu(i, k) = m;
      if (m == 0.0) continue;
      double* irow = lu.row_ptr(i);
      const double* krow = lu.row_ptr(k);
      for (std::size_t c = k + 1; c < n; ++c) irow[c] -= m * krow[c];
    }
  }
  return Lu(std::move(lu), std::move(perm));
}

Vec Lu::solve(const Vec& b) const {
  const std::size_t n = dim();
  SORA_CHECK(b.size() == n);
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[perm_[i]];
    const double* row = lu_.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) v -= row[k] * y[k];
    y[i] = v;
  }
  Vec x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = y[ii];
    const double* row = lu_.row_ptr(ii);
    for (std::size_t k = ii + 1; k < n; ++k) v -= row[k] * x[k];
    x[ii] = v / row[ii];
  }
  return x;
}

Vec Lu::solve_transpose(const Vec& b) const {
  const std::size_t n = dim();
  SORA_CHECK(b.size() == n);
  // Solve U^T z = b (forward), then L^T w = z (backward), then x = P^T w.
  Vec z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= lu_(k, i) * z[k];
    z[i] = v / lu_(i, i);
  }
  Vec w(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double v = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) v -= lu_(k, ii) * w[k];
    w[ii] = v;
  }
  Vec x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = w[i];
  return x;
}

std::optional<Vec> solve_linear(const Matrix& a, const Vec& b) {
  auto lu = Lu::factor(a);
  if (!lu.has_value()) return std::nullopt;
  return lu->solve(b);
}

}  // namespace sora::linalg
