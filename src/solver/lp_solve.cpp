#include "solver/lp_solve.hpp"

#include <cmath>

#include "solver/presolve.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace sora::solver {
namespace {

LpSolution dispatch(const LpModel& model, const LpSolveOptions& options) {
  LpMethod method = options.method;
  if (method == LpMethod::kAuto) {
    const std::size_t size = model.num_rows() + model.num_vars();
    method = size <= options.simplex_size_limit ? LpMethod::kSimplex
                                                : LpMethod::kPdhg;
  }
  switch (method) {
    case LpMethod::kSimplex:
      return solve_simplex(model, options.simplex);
    case LpMethod::kPdhg:
      return solve_pdhg(model, options.pdhg);
    case LpMethod::kAuto:
      break;
  }
  SORA_CHECK_MSG(false, "unreachable LP method");
}

}  // namespace

LpSolution solve_lp(const LpModel& model, const LpSolveOptions& options) {
  if (!options.presolve) return dispatch(model, options);
  return solve_with_presolve(
      model, [&options](const LpModel& m) { return dispatch(m, options); });
}

LpCrossCheck cross_check(const LpModel& model, const LpSolveOptions& options) {
  LpCrossCheck out;
  out.simplex = solve_simplex(model, options.simplex);
  out.pdhg = solve_pdhg(model, options.pdhg);
  SORA_CHECK_MSG(out.simplex.ok(), "simplex failed: " + out.simplex.detail);
  SORA_CHECK_MSG(out.pdhg.ok(), "pdhg failed: " + out.pdhg.detail);
  const double scale = 1.0 + std::fabs(out.simplex.objective) +
                       std::fabs(out.pdhg.objective);
  out.objective_gap =
      std::fabs(out.simplex.objective - out.pdhg.objective) / scale;
  return out;
}

double cross_check_gap(const LpModel& model, const LpSolveOptions& options) {
  return cross_check(model, options).objective_gap;
}

}  // namespace sora::solver
