// Invariant checking for ROA trajectories and P2 solutions.
//
// The checks are the paper's guarantees, mechanically enforced on arbitrary
// instances (equation numbers follow the paper):
//   * coverage (1a): per tier-1 cloud, sum_e min(x_e, y_e[, z_e]) >= lambda
//   * capacities (1b)/(1c) (+ (1d) with the tier-1 term)
//   * P2 rows (3a)-(3c): x >= s, y >= s, per-cloud sum s >= lambda
//   * feasibility transfer (3d)/(3e): the Lemma-1 rows that make the P2
//     chain feasible for P1
//   * nonnegativity (3f)
//   * Theorem 1: total online cost <= r * offline P1 optimum, and the
//     offline optimum is a true lower bound for every feasible trajectory.
//
// Reports name the violated invariant, the slot, and the magnitude so a
// property-test failure reads like a paper reference, not a solver dump.
#pragma once

#include <string>
#include <vector>

#include "core/p2_subproblem.hpp"
#include "core/roa.hpp"
#include "core/types.hpp"

namespace sora::testing {

struct InvariantViolation {
  std::string invariant;  // e.g. "coverage(1a)", "transfer(3d)"
  std::size_t slot = 0;
  double magnitude = 0.0;  // how far past the tolerance
  std::string detail;
};

struct InvariantReport {
  std::vector<InvariantViolation> violations;

  bool ok() const { return violations.empty(); }
  /// One line per violation, worst first.
  std::string summary() const;
};

struct InvariantOptions {
  double feas_tol = 1e-6;  // absolute slack allowed on every constraint
};

/// P1 feasibility of a whole trajectory: coverage (1a), capacities
/// (1b)/(1c)/(1d), nonnegativity, per slot.
InvariantReport check_trajectory(const cloudnet::Instance& inst,
                                 const core::Trajectory& traj,
                                 const InvariantOptions& options = {});

/// P2(t) constraint satisfaction of one solution: (3a)-(3f) plus the
/// transfer rows (3d)/(3e) and the capacity rows the solver keeps explicit.
InvariantReport check_p2_solution(const cloudnet::Instance& inst,
                                  const core::InputSeries& inputs,
                                  std::size_t t, const core::P2Solution& sol,
                                  const InvariantOptions& options = {});

/// Theorem-1 check data: the realized online cost must sit inside
/// [offline, r * offline] (up to rel_slack) where r is the theoretical
/// competitive ratio for the instance's capacities.
struct RatioCheck {
  double online_cost = 0.0;
  double offline_cost = 0.0;
  double empirical_ratio = 0.0;
  double theoretical_ratio = 0.0;
  bool within_bound = false;      // online <= r * offline (Theorem 1)
  bool offline_is_lower = false;  // online >= offline (offline optimality)
  bool ok() const { return within_bound && offline_is_lower; }
};

RatioCheck check_theorem1(const cloudnet::Instance& inst,
                          const core::RoaRun& run, double eps,
                          double eps_prime, double rel_slack = 1e-4);

}  // namespace sora::testing
