// Deterministic, seedable random number generation. All stochastic inputs in
// the library (price synthesis, workload noise, prediction noise) draw from
// Rng so that every experiment is reproducible from its printed seed.
#pragma once

#include <cstdint>
#include <vector>

namespace sora::util {

/// xoshiro256** — fast, high-quality, tiny state. Seeded via splitmix64 so
/// any 64-bit seed (including 0) expands to a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();

  /// Normal with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);

  /// Pareto(shape alpha > 0, scale xm > 0); heavy-tailed spike magnitudes.
  double pareto(double alpha, double xm);

  /// Exponential with rate lambda > 0.
  double exponential(double lambda);

  /// Derive an independent stream (e.g., one per sweep point) from this one.
  /// Consumes one draw, so the child depends on how much of this stream has
  /// been used. For order-independent derivation use child().
  Rng split();

  /// Derive the `stream`-th child stream from this generator's seed only.
  /// Unlike split(), the result does not depend on consumption: child(k) is
  /// the same generator whether called before or after any draws, so
  /// parallel workers indexed by k are reproducible from one printed master
  /// seed. Distinct streams are statistically independent (splitmix64-mixed).
  Rng child(std::uint64_t stream) const;

  /// The seed this generator was constructed from (master seed of its
  /// children). Reported by harnesses so failures can be replayed.
  std::uint64_t seed() const { return seed_; }

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sora::util
