file(REMOVE_RECURSE
  "CMakeFiles/sora_cloudnet.dir/geo.cpp.o"
  "CMakeFiles/sora_cloudnet.dir/geo.cpp.o.d"
  "CMakeFiles/sora_cloudnet.dir/instance.cpp.o"
  "CMakeFiles/sora_cloudnet.dir/instance.cpp.o.d"
  "CMakeFiles/sora_cloudnet.dir/pricing.cpp.o"
  "CMakeFiles/sora_cloudnet.dir/pricing.cpp.o.d"
  "CMakeFiles/sora_cloudnet.dir/sites_data.cpp.o"
  "CMakeFiles/sora_cloudnet.dir/sites_data.cpp.o.d"
  "CMakeFiles/sora_cloudnet.dir/workload.cpp.o"
  "CMakeFiles/sora_cloudnet.dir/workload.cpp.o.d"
  "libsora_cloudnet.a"
  "libsora_cloudnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_cloudnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
