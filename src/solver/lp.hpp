// Linear program model and builder.
//
// Canonical form used throughout the library:
//
//   minimize    c^T x + offset
//   subject to  row_lower <= A x <= row_upper     (two-sided rows)
//               var_lower <= x <= var_upper        (variable bounds)
//
// ±infinity encodes one-sided rows/bounds; row_lower == row_upper encodes an
// equality. The builder assembles models with named variables so that the
// cloud-network formulations (P1 slices, multi-slot offline LPs, window
// re-optimizations) read close to the paper's notation.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "linalg/sparse.hpp"
#include "linalg/vector_ops.hpp"

namespace sora::solver {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

using linalg::SparseMatrix;
using linalg::Vec;

struct LpModel {
  Vec objective;          // c, size = num variables
  double objective_offset = 0.0;
  SparseMatrix a;         // rows x vars
  Vec row_lower;
  Vec row_upper;
  Vec var_lower;
  Vec var_upper;

  std::size_t num_vars() const { return objective.size(); }
  std::size_t num_rows() const { return row_lower.size(); }

  /// Throws CheckError if dimensions mismatch or any lower > upper.
  void validate() const;

  /// Worst violation of rows+bounds at x (0 when feasible).
  double max_violation(const Vec& x) const;

  double objective_value(const Vec& x) const {
    return linalg::dot(objective, x) + objective_offset;
  }
};

/// One linear term: coefficient * variable.
struct LinTerm {
  std::size_t var;
  double coeff;
};

class LpBuilder {
 public:
  LpBuilder() = default;

  /// Returns the new variable's index.
  std::size_t add_variable(double lower, double upper, double cost,
                           std::string name = {});

  /// Returns the new row's index.
  std::size_t add_constraint(double lower, double upper,
                             std::vector<LinTerm> terms,
                             std::string name = {});

  /// a x >= rhs and a x <= rhs conveniences.
  std::size_t add_ge(const std::vector<LinTerm>& terms, double rhs,
                     std::string name = {});
  std::size_t add_le(const std::vector<LinTerm>& terms, double rhs,
                     std::string name = {});
  std::size_t add_eq(const std::vector<LinTerm>& terms, double rhs,
                     std::string name = {});

  void add_objective_offset(double delta) { offset_ += delta; }
  /// Adds delta to variable var's objective coefficient.
  void add_cost(std::size_t var, double delta);

  std::size_t num_vars() const { return var_lower_.size(); }
  std::size_t num_rows() const { return row_lower_.size(); }

  const std::string& var_name(std::size_t v) const { return var_names_[v]; }
  const std::string& row_name(std::size_t r) const { return row_names_[r]; }

  LpModel build() const;

 private:
  Vec cost_;
  double offset_ = 0.0;
  Vec var_lower_, var_upper_;
  Vec row_lower_, row_upper_;
  std::vector<linalg::Triplet> triplets_;
  std::vector<std::string> var_names_;
  std::vector<std::string> row_names_;
};

}  // namespace sora::solver
