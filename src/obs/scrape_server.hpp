// Minimal Prometheus scrape endpoint: a single-threaded HTTP server that
// serves the registry's exposition text (including the slot-SLO summary
// appended via the text-extension hook) on GET /metrics, so a live run can
// be watched instead of post-mortemed from exit dumps.
//
//   GET /metrics  -> 200, Prometheus text format 0.0.4
//   GET /healthz  -> 200, "ok"
//   anything else -> 404
//
// Query strings are ignored: Prometheus federation and ad-hoc `curl
// '/metrics?query=...'` both resolve to the plain path.
//
// The server binds the loopback interface only, runs one accept-loop thread,
// and handles one connection at a time (a scrape is a handful of packets; a
// concurrent server would be over-engineering for a diagnostics port).
// Enable with SORA_METRICS_PORT=<port> (also flips metrics on) or
// `sora_cli --metrics-port`. Port 0 binds an ephemeral port — start()
// returns the actual port, which is how tests avoid collisions.
#pragma once

#include <string>

namespace sora::obs {

class ScrapeServer {
 public:
  ScrapeServer();
  ~ScrapeServer();  // stops and joins
  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// The process-wide server used by the env contract and sora_cli.
  static ScrapeServer& global();

  /// start() while the server is already running returns this (and leaves
  /// the running server untouched) so callers can tell "occupied" from a
  /// genuine socket/bind failure.
  static constexpr int kAlreadyRunning = -2;

  /// Bind 127.0.0.1:<port> (0 = ephemeral) and start the accept loop.
  /// Returns the bound port, kAlreadyRunning when the server is already up,
  /// or -1 on a socket/bind/invalid-port failure. A stopped server can be
  /// started again (same or different port).
  int start(int port);

  /// Shut the listener down and join the accept thread. Idempotent. Also
  /// shuts down an in-flight connection, so a wedged client (connected but
  /// never reading) cannot hang the join.
  void stop();

  bool running() const;
  int port() const;  ///< bound port while running, else -1

 private:
  struct Impl;
  Impl* impl_;
};

/// start() on the global server with a log line either way; returns the
/// bound port or -1. An already-running global server counts as success and
/// returns its existing port. Convenience for the env contract and CLI
/// wiring.
int start_global_scrape_server(int port);

}  // namespace sora::obs
