#include "eval/scenarios.hpp"

#include "util/options.hpp"
#include "util/rng.hpp"

namespace sora::eval {

const char* to_string(Workload w) {
  switch (w) {
    case Workload::kWikipedia: return "wikipedia";
    case Workload::kWorldCup: return "worldcup";
  }
  return "?";
}

EvalScale EvalScale::from_env() {
  EvalScale scale;
  if (util::env_flag("REPRO_FULL")) {
    scale.num_tier2 = 18;
    scale.num_tier1 = 48;
    scale.horizon_wikipedia = 500;
    scale.horizon_worldcup = 600;
    scale.full = true;
  }
  return scale;
}

core::Instance build_eval_instance(const Scenario& scenario,
                                   const EvalScale& scale) {
  util::Rng rng(scenario.seed);
  cloudnet::WorkloadTrace trace;
  switch (scenario.workload) {
    case Workload::kWikipedia:
      trace = cloudnet::wikipedia_like(scale.horizon_wikipedia, rng);
      break;
    case Workload::kWorldCup:
      trace = cloudnet::worldcup_like(scale.horizon_worldcup, rng);
      break;
  }
  cloudnet::InstanceConfig cfg;
  cfg.num_tier2 = scale.num_tier2;
  cfg.num_tier1 = scale.num_tier1;
  cfg.sla_k = scenario.sla_k;
  cfg.reconfig_weight = scenario.reconfig_weight;
  cfg.seed = scenario.seed + 17;
  return cloudnet::build_instance(cfg, trace);
}

solver::LpSolveOptions offline_lp_options(const EvalScale& scale) {
  solver::LpSolveOptions lp;
  lp.method = solver::LpMethod::kPdhg;
  // At full scale, trade a little accuracy for wall-clock: cost ratios in
  // the paper are reported to ~2 digits.
  lp.pdhg.eps_rel = scale.full ? 3e-5 : 2e-5;
  lp.pdhg.max_iterations = scale.full ? 400000 : 300000;
  // Cost ratios are reported to ~2 digits; accept a stalled tail within
  // 20x the tolerance (worst case ~4e-4 relative KKT error).
  lp.pdhg.accept_factor = 20.0;
  return lp;
}

}  // namespace sora::eval
