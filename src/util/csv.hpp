// Small CSV writer/reader used by the benchmark harness to persist series
// (one row per sweep point) and by the workload loader.
#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace sora::util {

/// Accumulates rows and streams RFC-4180-ish CSV (quotes fields containing
/// separators). Numeric cells are formatted with full double precision.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.10g.
  void add_numeric_row(const std::vector<double>& values);

  const std::vector<std::string>& header() const { return header_; }
  std::size_t row_count() const { return rows_.size(); }

  void write(std::ostream& os) const;
  /// Writes to the given path; throws CheckError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parse one CSV line into fields (handles quoted fields with embedded
/// separators and doubled quotes).
std::vector<std::string> parse_csv_line(const std::string& line);

/// Full-file reader: returns header + rows. Returns nullopt if the file
/// cannot be opened.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};
std::optional<CsvTable> read_csv_file(const std::string& path);

}  // namespace sora::util
