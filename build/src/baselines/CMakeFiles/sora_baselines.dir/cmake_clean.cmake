file(REMOVE_RECURSE
  "CMakeFiles/sora_baselines.dir/lcp_m.cpp.o"
  "CMakeFiles/sora_baselines.dir/lcp_m.cpp.o.d"
  "CMakeFiles/sora_baselines.dir/offline.cpp.o"
  "CMakeFiles/sora_baselines.dir/offline.cpp.o.d"
  "CMakeFiles/sora_baselines.dir/oneshot.cpp.o"
  "CMakeFiles/sora_baselines.dir/oneshot.cpp.o.d"
  "libsora_baselines.a"
  "libsora_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sora_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
