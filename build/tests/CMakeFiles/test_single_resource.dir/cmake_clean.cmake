file(REMOVE_RECURSE
  "CMakeFiles/test_single_resource.dir/test_single_resource.cpp.o"
  "CMakeFiles/test_single_resource.dir/test_single_resource.cpp.o.d"
  "test_single_resource"
  "test_single_resource.pdb"
  "test_single_resource[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_single_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
