// The regularized per-slot subproblem P2(t) (paper eq. (3a)-(3f)) and its
// solver.
//
// Variables (per admissible edge e = (j, i)): x_e, y_e, s_e. Objective:
//
//   sum_e a_{i(e),t} x_e + sum_e c_e y_e
//   + sum_i (b_i/eta_i)   * entropic(X_i | X_i^{t-1}, eps)     (X_i = sum x)
//   + sum_e (d_e/eta'_e)  * entropic(y_e | y_e^{t-1}, eps')
//
// subject to the coverage constraints (3a)-(3c), the feasibility-transfer
// constraints (3d)/(3e), nonnegativity (3f), and — following Lemma 1, which
// shows they are slack at the optimum — the explicit capacity constraints
// (1b)/(1c) to keep interior-point iterates physical.
//
// The solver is the dense barrier IPM; the strictly feasible start is the
// even-split point inflated by a small margin (valid under the paper's
// capacity provisioning rule), with a phase-I LP fallback for exotic
// instances.
#pragma once

#include "core/p1_model.hpp"
#include "core/types.hpp"
#include "solver/ipm.hpp"

namespace sora::core {

struct RoaOptions {
  double eps = 1e-2;        // the paper's epsilon (tier-2 aggregates)
  double eps_prime = 1e-2;  // the paper's epsilon' (edges)
  solver::IpmOptions ipm;   // inner solver controls

  RoaOptions() { ipm.tol = 1e-6; }
};

struct P2Solution {
  Allocation alloc;
  Vec s;                 // the auxiliary s_e at the optimum
  double objective = 0.0;  // P2 objective (regularized)
  std::size_t newton_steps = 0;

  // KKT multipliers of P2(t)'s constraints (the paper's Step 3 notation),
  // recovered from the barrier solve. Zero where the constraint was not
  // generated (the conditional transfer rows (3d)/(3e)). Used by the
  // competitive-certificate construction.
  Vec rho;    // per edge, for (3a) x >= s
  Vec phi;    // per edge, for (3b) y >= s
  Vec gamma;  // per tier-1 cloud, for (3c) coverage
  Vec delta;  // per tier-2 cloud, for (3d)
  Vec theta;  // per edge, for (3e)
  Vec sigma;  // per edge, for z >= s (only with the tier-1 term)
};

/// Solve P2(t) given the previous slot's decision. Throws CheckError when
/// the instance is infeasible at slot t.
P2Solution solve_p2(const Instance& inst, const InputSeries& inputs,
                    std::size_t t, const Allocation& prev,
                    const RoaOptions& options = {});

/// A strictly feasible (x, y, s) for P2(t)'s constraint polyhedron, packed
/// as [x | y | s]. Exposed for tests.
Vec p2_strictly_feasible_point(const Instance& inst, const InputSeries& inputs,
                               std::size_t t);

}  // namespace sora::core
