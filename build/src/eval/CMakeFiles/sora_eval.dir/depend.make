# Empty dependencies file for sora_eval.
# This may be replaced when dependencies are built.
