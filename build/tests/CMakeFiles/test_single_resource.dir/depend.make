# Empty dependencies file for test_single_resource.
# This may be replaced when dependencies are built.
