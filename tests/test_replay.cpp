// Service-replay simulator and multi-seed statistics.
#include <gtest/gtest.h>

#include "baselines/oneshot.hpp"
#include "core/roa.hpp"
#include "eval/montecarlo.hpp"
#include "eval/replay.hpp"
#include "util/rng.hpp"

namespace sora::eval {
namespace {

core::Instance small_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  const auto trace = cloudnet::wikipedia_like(8, rng);
  cloudnet::InstanceConfig cfg;
  cfg.num_tier2 = 3;
  cfg.num_tier1 = 4;
  cfg.sla_k = 2;
  cfg.reconfig_weight = 20.0;
  cfg.seed = seed;
  return cloudnet::build_instance(cfg, trace);
}

TEST(Replay, FeasibleTrajectoryServesEverything) {
  const auto inst = small_instance(1);
  const auto run = baselines::run_one_shot_sequence(inst);
  const auto report = replay_trajectory(inst, run.trajectory);
  EXPECT_NEAR(report.drop_rate, 0.0, 1e-9);
  EXPECT_EQ(report.violation_slots, 0u);
  EXPECT_NEAR(report.total_served, report.total_demand, 1e-6);
  // Greedy allocates just enough: utilization near 1.
  EXPECT_GT(report.mean_tier2_utilization, 0.9);
}

TEST(Replay, ZeroTrajectoryDropsEverything) {
  const auto inst = small_instance(2);
  core::Trajectory traj;
  for (std::size_t t = 0; t < inst.horizon; ++t)
    traj.slots.push_back(core::Allocation::zeros(inst.num_edges()));
  const auto report = replay_trajectory(inst, traj);
  EXPECT_NEAR(report.drop_rate, 1.0, 1e-12);
  EXPECT_EQ(report.violation_slots, inst.horizon);
}

TEST(Replay, HalfCapacityDropsHalf) {
  const auto inst = small_instance(3);
  core::Trajectory traj;
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    core::Allocation a = core::Allocation::zeros(inst.num_edges());
    const auto split = inst.even_split(t);
    for (std::size_t e = 0; e < inst.num_edges(); ++e) {
      a.x[e] = 0.5 * split[e];
      a.y[e] = 0.5 * split[e];
    }
    traj.slots.push_back(a);
  }
  const auto report = replay_trajectory(inst, traj);
  EXPECT_NEAR(report.drop_rate, 0.5, 1e-9);
}

TEST(Replay, RoaOverprovisionsDuringDecay) {
  // ROA holds capacity through demand dips, so its utilization is below
  // greedy's while its drop rate stays zero.
  const auto inst = small_instance(4);
  const auto roa = core::run_roa(inst);
  const auto greedy = baselines::run_one_shot_sequence(inst);
  const auto roa_rep = replay_trajectory(inst, roa.trajectory);
  const auto greedy_rep = replay_trajectory(inst, greedy.trajectory);
  EXPECT_NEAR(roa_rep.drop_rate, 0.0, 1e-6);
  EXPECT_LE(roa_rep.mean_tier2_utilization,
            greedy_rep.mean_tier2_utilization + 1e-9);
  EXPECT_GE(roa_rep.overprovision_factor,
            greedy_rep.overprovision_factor - 1e-9);
}

TEST(MonteCarlo, SummaryStatistics) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_EQ(s.samples, 4u);
}

TEST(MonteCarlo, SweepSeedsProducesDistinctInstances) {
  EvalScale scale;
  scale.num_tier2 = 3;
  scale.num_tier1 = 4;
  scale.horizon_wikipedia = 6;
  Scenario sc;
  sc.sla_k = 2;
  // Metric = a non-peak slot's demand (slot 0 is the 6-hour peak and is
  // normalized to exactly 1 for every seed): differs across seeds because
  // the trace noise does.
  const auto stats = sweep_seeds(
      sc, scale, 4,
      [](const core::Instance& inst) { return inst.demand[4][0]; });
  EXPECT_GT(stats.max - stats.min, 1e-6);
  EXPECT_EQ(stats.samples, 4u);
}

TEST(MonteCarlo, DeterministicAcrossCalls) {
  EvalScale scale;
  scale.num_tier2 = 3;
  scale.num_tier1 = 4;
  scale.horizon_wikipedia = 6;
  Scenario sc;
  const auto metric = [](const core::Instance& inst) {
    return inst.total_demand(0);
  };
  const auto a = sweep_seeds(sc, scale, 3, metric);
  const auto b = sweep_seeds(sc, scale, 3, metric);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

}  // namespace
}  // namespace sora::eval
