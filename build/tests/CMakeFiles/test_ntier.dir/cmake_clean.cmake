file(REMOVE_RECURSE
  "CMakeFiles/test_ntier.dir/test_ntier.cpp.o"
  "CMakeFiles/test_ntier.dir/test_ntier.cpp.o.d"
  "test_ntier"
  "test_ntier.pdb"
  "test_ntier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
