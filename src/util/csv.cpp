#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace sora::util {
namespace {

bool needs_quoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

void write_field(std::ostream& os, const std::string& field) {
  if (!needs_quoting(field)) {
    os << field;
    return;
  }
  os << '"';
  for (char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_row(std::ostream& os, const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ',';
    write_field(os, cells[i]);
  }
  os << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  SORA_CHECK_MSG(cells.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

void CsvWriter::write(std::ostream& os) const {
  write_row(os, header_);
  for (const auto& row : rows_) write_row(os, row);
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream os(path);
  SORA_CHECK_MSG(os.good(), "cannot open " + path);
  write(os);
  SORA_CHECK_MSG(os.good(), "write failed for " + path);
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

std::optional<CsvTable> read_csv_file(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return std::nullopt;
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    auto fields = parse_csv_line(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  return table;
}

}  // namespace sora::util
