// First-order LP solver: primal-dual hybrid gradient (Chambolle–Pock) with
// the standard large-scale-LP refinements popularized by PDLP:
//   * Ruiz equilibration of the constraint matrix,
//   * Pock–Chambolle diagonal preconditioning (per-column primal and per-row
//     dual steps from the absolute row/column sums — no spectral estimate),
//   * iterate averaging with adaptive restarts (restart to the better of the
//     current iterate and the running average when the KKT error halves),
//   * adaptive primal-weight rebalancing between the primal and dual step
//     diagonals, driven by the movement ratio between restarts,
//   * an explicit CSR transpose so both matvecs are row-gather loops.
//
// Solves the same canonical form as the simplex:
//   min c^T x   s.t.  row_lower <= A x <= row_upper, var_lower <= x <= var_upper.
//
// This is the workhorse for the multi-slot offline optimum P1 (10^5+
// variables at paper scale), where a dense simplex basis would not fit.
// Accuracy is controlled by relative KKT tolerances; tests cross-validate
// its optima against the simplex on small instances.
#pragma once

#include "solver/lp.hpp"
#include "solver/solution.hpp"

namespace sora::solver {

struct PdhgOptions {
  std::size_t max_iterations = 200000;
  double eps_rel = 1e-6;        // relative KKT tolerance
  double eps_abs = 1e-8;
  // On hitting the iteration limit, a point whose KKT error is within
  // accept_factor * eps_rel is still reported optimal (with the achieved
  // error in `detail`). PDHG's tail convergence on degenerate LPs can stall
  // a small factor above the target; callers that only need a few digits
  // (cost ratios) set this > 1.
  double accept_factor = 1.0;
  std::size_t restart_check_interval = 160;
  std::size_t ruiz_iterations = 10;
  // Adaptive primal weight omega: at each restart the primal/dual step
  // diagonals are rebalanced toward the observed dual/primal movement ratio
  // (log-space smoothing `weight_smoothing`, clamped to
  // [weight_min, weight_max]). tau_j <- tau_j / omega, sigma_r <- sigma_r *
  // omega keeps ||S^1/2 A T^1/2|| <= 1, so every restart is a valid fresh
  // start. Disable to recover the fixed Pock–Chambolle diagonals.
  bool adaptive_weight = true;
  double weight_smoothing = 0.5;
  double weight_min = 1e-2;
  double weight_max = 1e2;
  bool log_progress = false;
};

LpSolution solve_pdhg(const LpModel& model, const PdhgOptions& options = {});

}  // namespace sora::solver
