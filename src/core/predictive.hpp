// Prediction-based control algorithms (Sec. IV).
//
// Standard controllers:
//   * FHC  — fixed horizon: solve P1 over non-overlapping w-slot blocks and
//            apply the whole block.
//   * RHC  — receding horizon: solve P1 over [t, t+w) each slot, apply the
//            first decision.
// Regularized controllers (the paper's contribution, Theorem 4):
//   * RFHC — run the regularized chain P2(t)..P2(t+w-1) over the block, pin
//            the chain's final decision, re-solve the interior with the
//            exact P1 window LP, apply the block.
//   * RRHC — maintain the regularized chain incrementally; each slot pin
//            chain[t+w-1], re-solve P1 over the window, apply slot t only.
//
// Predictions: a noisy copy of the demand and tier-2 price series (zero-mean
// Gaussian, sd = error_pct * the series' temporal mean, the paper's noise
// model). The slot that is current when a plan is made is always observed
// exactly. Decisions are evaluated against the TRUE inputs; if noisy
// planning under-covers the true demand, a minimal-cost repair LP adds just
// enough resources (the practical "reactive scaling" step; exact
// predictions never trigger it).
#pragma once

#include <cstdint>
#include <string>

#include "core/p1_model.hpp"
#include "core/p2_subproblem.hpp"
#include "core/types.hpp"

namespace sora::core {

struct PredictionModel {
  double error_pct = 0.0;   // noise sd as a fraction of the temporal mean
  std::uint64_t seed = 1;
};

/// Materialized (possibly noisy) forecast series.
struct PredictedInputs {
  std::vector<std::vector<double>> demand;       // [t][j]
  std::vector<std::vector<double>> tier2_price;  // [t][i]

  InputSeries view() const { return {&demand, &tier2_price}; }
  /// Overwrite slot t with the true inputs (called when t becomes current).
  void observe(const Instance& inst, std::size_t t);
};

PredictedInputs make_predictions(const Instance& inst,
                                 const PredictionModel& model);

struct ControlOptions {
  std::size_t window = 4;       // w >= 1
  PredictionModel prediction;   // error_pct == 0 -> exact predictions
  RoaOptions roa;               // inner regularized solves (RFHC/RRHC)
  solver::LpSolveOptions lp;    // window LP solves
};

struct ControlRun {
  std::string algorithm;
  Trajectory trajectory;
  CostBreakdown cost;         // against true inputs
  std::size_t repairs = 0;    // slots where the repair LP had to add capacity
  // Slots whose repair LP itself failed on every backend: the planned
  // allocation was applied unrepaired (possibly under-covered) instead of
  // killing the run. Always 0 on a healthy solver.
  std::size_t failed_repairs = 0;
  // Slot-level SLO rollup. Per-slot latency = repair/apply time plus the
  // window-LP (or chain) planning time amortized over the block it planned;
  // budget from ControlOptions::roa.slo. Repaired slots count as fallbacks,
  // unrepaired (failed-repair) slots as degraded. See obs/slo.hpp.
  obs::SlotSloReport slo;
};

ControlRun run_fhc(const Instance& inst, const ControlOptions& options);
ControlRun run_rhc(const Instance& inst, const ControlOptions& options);
ControlRun run_rfhc(const Instance& inst, const ControlOptions& options);
ControlRun run_rrhc(const Instance& inst, const ControlOptions& options);

/// AFHC (Averaging FHC, Lin et al. [11]) — the classic multi-cloud
/// prediction-based baseline: average the decisions of the w phase-shifted
/// FHC controllers. Provided as an extension baseline.
ControlRun run_afhc(const Instance& inst, const ControlOptions& options);

/// Minimal-cost additive repair making `planned` cover the TRUE demand at
/// slot t (no-op if it already does). Exposed for tests. When `outcome` is
/// null a failed repair LP throws CheckError; when non-null the failure is
/// reported there and `planned` comes back unchanged so the caller can
/// degrade instead of dying.
Allocation repair_allocation(const Instance& inst, std::size_t t,
                             const Allocation& planned,
                             const solver::LpSolveOptions& lp = {},
                             bool* repaired = nullptr,
                             SolveOutcome* outcome = nullptr);

}  // namespace sora::core
