file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_workloads.dir/bench_fig4_workloads.cpp.o"
  "CMakeFiles/bench_fig4_workloads.dir/bench_fig4_workloads.cpp.o.d"
  "bench_fig4_workloads"
  "bench_fig4_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
