#include "core/ntier.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "core/regularizer.hpp"
#include "core/resilience.hpp"
#include "linalg/matrix.hpp"
#include "obs/obs.hpp"
#include "solver/ipm.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace sora::core {

using linalg::Matrix;
using linalg::Vec;
using solver::kInf;
using solver::LinTerm;
using solver::LpBuilder;

std::size_t NTierInstance::node_key(std::size_t tier, std::size_t index) const {
  SORA_DCHECK(tier < num_tiers && index < tier_sizes[tier]);
  std::size_t key = index;
  for (std::size_t n = 0; n < tier; ++n) key += tier_sizes[n];
  return key;
}

std::size_t NTierInstance::num_nodes() const {
  std::size_t n = 0;
  for (const std::size_t s : tier_sizes) n += s;
  return n;
}

const std::vector<std::size_t>& NTierInstance::admissible_links(
    std::size_t j) const {
  SORA_CHECK(j < admissible_.size());
  return admissible_[j];
}

void NTierInstance::finalize() {
  SORA_CHECK(num_tiers >= 2 && tier_sizes.size() == num_tiers);
  out_links.assign(num_nodes(), {});
  in_links.assign(num_nodes(), {});
  for (std::size_t l = 0; l < links.size(); ++l) {
    const auto& link = links[l];
    out_links[node_key(link.tier, link.from)].push_back(l);
    in_links[node_key(link.tier + 1, link.to)].push_back(l);
  }
  // Per-commodity admissible links: BFS from the tier-0 node.
  admissible_.assign(num_demands(), {});
  for (std::size_t j = 0; j < num_demands(); ++j) {
    std::vector<bool> node_reached(num_nodes(), false);
    node_reached[node_key(0, j)] = true;
    for (std::size_t n = 0; n + 1 < num_tiers; ++n) {
      for (std::size_t l = 0; l < links.size(); ++l) {
        if (links[l].tier != n) continue;
        if (!node_reached[node_key(n, links[l].from)]) continue;
        admissible_[j].push_back(l);
        node_reached[node_key(n + 1, links[l].to)] = true;
      }
    }
  }
}

namespace {

// Even spread of one demand row through the DAG: each node splits its flow
// evenly across its out-links. Returns aggregate per-link flow and per-node
// inflow (tier >= 1).
struct Spread {
  Vec node_inflow;  // by node key
  Vec link_flow;    // by link id
};

Spread even_spread(const NTierInstance& inst, const Vec& demand_row) {
  Spread s;
  s.node_inflow.assign(inst.num_nodes(), 0.0);
  s.link_flow.assign(inst.num_links(), 0.0);
  // Flow currently held at each node, to be pushed tier by tier.
  Vec holding(inst.num_nodes(), 0.0);
  for (std::size_t j = 0; j < inst.num_demands(); ++j)
    holding[inst.node_key(0, j)] = demand_row[j];
  for (std::size_t n = 0; n + 1 < inst.num_tiers; ++n) {
    for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
      const std::size_t key = inst.node_key(n, v);
      const auto& outs = inst.out_links[key];
      if (holding[key] <= 0.0) continue;
      SORA_CHECK_MSG(!outs.empty(), "dead-end node with positive flow");
      const double share = holding[key] / static_cast<double>(outs.size());
      for (const std::size_t l : outs) {
        s.link_flow[l] += share;
        const std::size_t to_key =
            inst.node_key(inst.links[l].tier + 1, inst.links[l].to);
        s.node_inflow[to_key] += share;
        holding[to_key] += share;
      }
      holding[key] = 0.0;
    }
  }
  return s;
}

}  // namespace

NTierInstance build_ntier_instance(const NTierConfig& config,
                                   const std::vector<double>& demand_trace,
                                   util::Rng& rng) {
  SORA_CHECK(config.tier_sizes.size() >= 2);
  SORA_CHECK(!demand_trace.empty());
  NTierInstance inst;
  inst.num_tiers = config.tier_sizes.size();
  inst.tier_sizes = config.tier_sizes;
  inst.horizon = demand_trace.size();

  // Ring-adjacent SLA: node v of tier n connects to k consecutive nodes of
  // tier n+1 starting at the proportionally mapped position.
  for (std::size_t n = 0; n + 1 < inst.num_tiers; ++n) {
    const std::size_t from_size = inst.tier_sizes[n];
    const std::size_t to_size = inst.tier_sizes[n + 1];
    const std::size_t k = std::min(config.sla_k, to_size);
    for (std::size_t v = 0; v < from_size; ++v) {
      const std::size_t base = (v * to_size) / from_size;
      for (std::size_t m = 0; m < k; ++m)
        inst.links.push_back({n, v, (base + m) % to_size});
    }
  }
  inst.finalize();

  // Demands: the trace replicated across tier-0 nodes (peak 1 assumed).
  inst.demand.assign(inst.horizon, Vec(inst.num_demands(), 0.0));
  for (std::size_t t = 0; t < inst.horizon; ++t)
    for (std::size_t j = 0; j < inst.num_demands(); ++j)
      inst.demand[t][j] = demand_trace[t];

  // Prices: per-node hourly series around 1 (tiers >= 1), static link prices.
  inst.node_price.assign(inst.horizon, Vec(inst.num_nodes(), 0.0));
  for (std::size_t n = 1; n < inst.num_tiers; ++n) {
    for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
      const std::size_t key = inst.node_key(n, v);
      const double mean = rng.uniform(0.7, 1.3);
      const double sd = rng.uniform(0.05, 0.35);
      for (std::size_t t = 0; t < inst.horizon; ++t)
        inst.node_price[t][key] = std::max(0.05, rng.normal(mean, sd));
    }
  }
  inst.link_price.resize(inst.num_links());
  for (double& p : inst.link_price) p = rng.uniform(0.7, 1.3);

  inst.node_reconfig.assign(inst.num_nodes(), config.reconfig_weight);
  inst.link_reconfig.assign(inst.num_links(), config.reconfig_weight);

  // Capacities: margin times the even-spread peak.
  Vec peak_node(inst.num_nodes(), 0.0), peak_link(inst.num_links(), 0.0);
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    const Spread s = even_spread(inst, inst.demand[t]);
    for (std::size_t v = 0; v < inst.num_nodes(); ++v)
      peak_node[v] = std::max(peak_node[v], s.node_inflow[v]);
    for (std::size_t l = 0; l < inst.num_links(); ++l)
      peak_link[l] = std::max(peak_link[l], s.link_flow[l]);
  }
  inst.node_capacity.resize(inst.num_nodes());
  inst.link_capacity.resize(inst.num_links());
  for (std::size_t v = 0; v < inst.num_nodes(); ++v)
    inst.node_capacity[v] = config.capacity_margin * peak_node[v];
  for (std::size_t l = 0; l < inst.num_links(); ++l)
    inst.link_capacity[l] = config.capacity_margin * peak_link[l];

  return inst;
}

double ntier_total_cost(const NTierInstance& inst,
                        const NTierTrajectory& traj) {
  SORA_CHECK(traj.slots.size() <= inst.horizon);
  double cost = 0.0;
  NTierAllocation prev{Vec(inst.num_nodes(), 0.0), Vec(inst.num_links(), 0.0)};
  for (std::size_t t = 0; t < traj.slots.size(); ++t) {
    const auto& a = traj.slots[t];
    for (std::size_t v = 0; v < inst.num_nodes(); ++v) {
      cost += inst.node_price[t][v] * a.node[v];
      const double inc = a.node[v] - prev.node[v];
      if (inc > 0.0) cost += inst.node_reconfig[v] * inc;
    }
    for (std::size_t l = 0; l < inst.num_links(); ++l) {
      cost += inst.link_price[l] * a.link[l];
      const double inc = a.link[l] - prev.link[l];
      if (inc > 0.0) cost += inst.link_reconfig[l] * inc;
    }
    prev = a;
  }
  return cost;
}

namespace {

// Commodity-flow variable indexing: per commodity j, only its admissible
// links get variables.
struct FlowIndex {
  std::vector<std::vector<std::size_t>> offset;  // [j][pos] -> flat id
  std::vector<std::vector<std::size_t>> link_of; // [j][pos] -> link id
  std::size_t count = 0;

  explicit FlowIndex(const NTierInstance& inst) {
    offset.resize(inst.num_demands());
    link_of.resize(inst.num_demands());
    for (std::size_t j = 0; j < inst.num_demands(); ++j) {
      for (const std::size_t l : inst.admissible_links(j)) {
        offset[j].push_back(count++);
        link_of[j].push_back(l);
      }
    }
  }
};

// Append the flow/routing constraints for one slot to an LpBuilder, with
// variable index translators supplied by the caller.
template <typename FlowVar, typename NodeVar, typename LinkVar>
void add_routing_rows(const NTierInstance& inst, const Vec& demand_row,
                      LpBuilder& b, const FlowIndex& fidx, FlowVar fvar,
                      NodeVar xvar, LinkVar yvar) {
  // Coverage: commodity j's tier-0 out-flow >= lambda_j.
  for (std::size_t j = 0; j < inst.num_demands(); ++j) {
    std::vector<LinTerm> terms;
    for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
      const auto& link = inst.links[fidx.link_of[j][pos]];
      if (link.tier == 0 && link.from == j)
        terms.push_back({fvar(j, pos), 1.0});
    }
    b.add_ge(terms, demand_row[j]);
  }
  // Conservation (no-vanish): at each intermediate node, out >= in.
  for (std::size_t j = 0; j < inst.num_demands(); ++j) {
    for (std::size_t n = 1; n + 1 < inst.num_tiers; ++n) {
      for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
        std::vector<LinTerm> terms;
        for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
          const auto& link = inst.links[fidx.link_of[j][pos]];
          if (link.tier == n && link.from == v)
            terms.push_back({fvar(j, pos), 1.0});
          else if (link.tier + 1 == n && link.to == v)
            terms.push_back({fvar(j, pos), -1.0});
        }
        if (!terms.empty()) b.add_ge(terms, 0.0);
      }
    }
  }
  // Node resource covers inflow; link resource covers total flow.
  for (std::size_t n = 1; n < inst.num_tiers; ++n) {
    for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
      std::vector<LinTerm> terms{{xvar(inst.node_key(n, v)), 1.0}};
      for (std::size_t j = 0; j < inst.num_demands(); ++j)
        for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
          const auto& link = inst.links[fidx.link_of[j][pos]];
          if (link.tier + 1 == n && link.to == v)
            terms.push_back({fvar(j, pos), -1.0});
        }
      b.add_ge(terms, 0.0);
    }
  }
  for (std::size_t l = 0; l < inst.num_links(); ++l) {
    std::vector<LinTerm> terms{{yvar(l), 1.0}};
    for (std::size_t j = 0; j < inst.num_demands(); ++j)
      for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos)
        if (fidx.link_of[j][pos] == l) terms.push_back({fvar(j, pos), -1.0});
    b.add_ge(terms, 0.0);
  }
}

// Resolved input series: the instance's own or a forecast override.
struct InputsView {
  const NTierInstance& inst;
  const NTierInputs* inputs;
  double lambda(std::size_t t, std::size_t j) const {
    return inputs != nullptr && inputs->demand != nullptr
               ? (*inputs->demand)[t][j]
               : inst.demand[t][j];
  }
  double price(std::size_t t, std::size_t v) const {
    return inputs != nullptr && inputs->node_price != nullptr
               ? (*inputs->node_price)[t][v]
               : inst.node_price[t][v];
  }
  Vec demand_row(std::size_t t) const {
    Vec row(inst.num_demands());
    for (std::size_t j = 0; j < row.size(); ++j) row[j] = lambda(t, j);
    return row;
  }
};

// A commodity with positive demand but no admissible links (a dead-end
// tier-0 node, or one cut off from the top tier) makes every formulation
// infeasible; fail with a structural message instead of a solver error.
// Mirrors the two-tier empty-SLA-group guard in p2_subproblem.cpp.
void check_demand_reachable(const NTierInstance& inst, const Vec& demand_row,
                            std::size_t t) {
  for (std::size_t j = 0; j < inst.num_demands(); ++j) {
    SORA_CHECK_MSG(
        demand_row[j] <= 0.0 || !inst.admissible_links(j).empty(),
        "tier-0 node " + std::to_string(j) +
            " has no admissible links but positive demand at t=" +
            std::to_string(t) + ": the n-tier problem is infeasible");
  }
}

// Window LP over [t0, t1). Layout per slot: [f | x | y | u | w]. When
// `terminal` is set, the final slot's resources are pinned to it.
//
// Failure handling: the LP is retried on the alternate backend by
// solve_lp_with_fallback. If both fail and `window_ok` is null, a
// recoverable CheckError is thrown; otherwise *window_ok is cleared and the
// window degrades to holding `prev` (the applier's repair step restores
// coverage slot by slot). `fault_slot`/`attempt_base` thread the
// fault-injection hook through when a slot solver uses this as its LP
// fallback stage.
NTierTrajectory solve_ntier_window(const NTierInstance& inst,
                                   const InputsView& view, std::size_t t0,
                                   std::size_t t1,
                                   const NTierAllocation& prev,
                                   const NTierAllocation* terminal,
                                   const solver::LpSolveOptions& lp,
                                   bool* window_ok = nullptr,
                                   SolveOutcome* outcome = nullptr,
                                   std::size_t fault_slot = kNoFaultSlot,
                                   std::size_t attempt_base = 0) {
  const FlowIndex fidx(inst);
  const std::size_t V = inst.num_nodes();
  const std::size_t L = inst.num_links();
  const std::size_t stride = fidx.count + 2 * V + 2 * L;
  const std::size_t window = t1 - t0;
  for (std::size_t t = t0; t < t1; ++t)
    check_demand_reachable(inst, view.demand_row(t), t);

  LpBuilder b;
  for (std::size_t rel = 0; rel < window; ++rel) {
    const std::size_t t = t0 + rel;
    const bool pinned = terminal != nullptr && rel == window - 1;
    for (std::size_t f = 0; f < fidx.count; ++f)
      b.add_variable(0.0, kInf, 0.0);
    for (std::size_t v = 0; v < V; ++v) {
      const double fix = pinned ? terminal->node[v] : -1.0;
      b.add_variable(pinned ? fix : 0.0,
                     pinned ? fix : inst.node_capacity[v],
                     view.price(t, v));
    }
    for (std::size_t l = 0; l < L; ++l) {
      const double fix = pinned ? terminal->link[l] : -1.0;
      b.add_variable(pinned ? fix : 0.0,
                     pinned ? fix : inst.link_capacity[l],
                     inst.link_price[l]);
    }
    for (std::size_t v = 0; v < V; ++v)
      b.add_variable(0.0, kInf, inst.node_reconfig[v]);  // u
    for (std::size_t l = 0; l < L; ++l)
      b.add_variable(0.0, kInf, inst.link_reconfig[l]);  // w
  }
  auto fvar_at = [&](std::size_t rel) {
    return [&fidx, rel, stride](std::size_t j, std::size_t pos) {
      return rel * stride + fidx.offset[j][pos];
    };
  };
  auto xvar_at = [&](std::size_t rel) {
    return [&fidx, rel, stride](std::size_t v) {
      return rel * stride + fidx.count + v;
    };
  };
  auto yvar_at = [&](std::size_t rel) {
    return [&fidx, rel, stride, V](std::size_t l) {
      return rel * stride + fidx.count + V + l;
    };
  };
  auto uvar = [&](std::size_t rel, std::size_t v) {
    return rel * stride + fidx.count + V + L + v;
  };
  auto wvar = [&](std::size_t rel, std::size_t l) {
    return rel * stride + fidx.count + 2 * V + L + l;
  };

  for (std::size_t rel = 0; rel < window; ++rel) {
    const std::size_t t = t0 + rel;
    add_routing_rows(inst, view.demand_row(t), b, fidx, fvar_at(rel),
                     xvar_at(rel), yvar_at(rel));
    for (std::size_t v = 0; v < V; ++v) {
      std::vector<LinTerm> terms{{uvar(rel, v), 1.0},
                                 {xvar_at(rel)(v), -1.0}};
      if (rel > 0) terms.push_back({xvar_at(rel - 1)(v), 1.0});
      b.add_ge(terms, rel > 0 ? 0.0 : -prev.node[v]);
    }
    for (std::size_t l = 0; l < L; ++l) {
      std::vector<LinTerm> terms{{wvar(rel, l), 1.0},
                                 {yvar_at(rel)(l), -1.0}};
      if (rel > 0) terms.push_back({yvar_at(rel - 1)(l), 1.0});
      b.add_ge(terms, rel > 0 ? 0.0 : -prev.link[l]);
    }
  }

  const solver::LpModel model = b.build();
  // Same treatment as solve_p1_window: big multi-slot window LPs stall PDHG
  // at the default budget (and simplex at this size is a hang, not a
  // rescue), so scale the first-order budget with the model. Small windows
  // keep the caller's options untouched.
  solver::LpSolveOptions opts = lp;
  const std::size_t size = model.num_rows() + model.num_vars();
  if (size > opts.simplex_size_limit)
    opts.pdhg.max_iterations =
        std::max<std::size_t>(opts.pdhg.max_iterations, 120 * size);
  util::Timer lp_timer;
  SolveOutcome lp_outcome;
  const auto sol =
      solve_lp_with_fallback(model, opts, &lp_outcome, fault_slot,
                             attempt_base);
  if (lp_outcome.fell_back() || !lp_outcome.ok())
    record_flight("ntier_window", t0, lp_outcome, lp_timer.seconds(),
                  "window[" + std::to_string(t0) + "," + std::to_string(t1) +
                      ") size=" + std::to_string(size));
  if (outcome != nullptr) *outcome = lp_outcome;
  if (!sol.ok()) {
    if (window_ok != nullptr) {
      *window_ok = false;
      SORA_LOG_WARN << "ntier: window LP failed over [" << t0 << ", " << t1
                    << ") (" << solver::to_string(sol.status)
                    << "); holding the previous allocation";
      NTierTrajectory held;
      held.slots.assign(window, prev);
      return held;
    }
    SORA_CHECK_MSG(false, "n-tier window LP failed: " + sol.detail);
  }
  if (window_ok != nullptr) *window_ok = true;

  NTierTrajectory traj;
  for (std::size_t rel = 0; rel < window; ++rel) {
    NTierAllocation a{Vec(V, 0.0), Vec(L, 0.0)};
    for (std::size_t v = 0; v < V; ++v)
      a.node[v] = std::max(0.0, sol.x[xvar_at(rel)(v)]);
    for (std::size_t l = 0; l < L; ++l)
      a.link[l] = std::max(0.0, sol.x[yvar_at(rel)(l)]);
    traj.slots.push_back(std::move(a));
  }
  return traj;
}

// P2-N objective: linear prices + per-node/per-link entropic terms.
class NTierP2Objective : public solver::ConvexObjective {
 public:
  NTierP2Objective(const NTierInstance& inst, const Vec& price_row,
                   const NTierAllocation& prev, const NTierRoaOptions& options,
                   std::size_t flow_count)
      : inst_(inst), price_row_(price_row), prev_(prev), options_(options),
        flow_count_(flow_count) {
    node_weight_.resize(inst.num_nodes());
    for (std::size_t v = 0; v < inst.num_nodes(); ++v) {
      const double eta = regularizer_eta(inst.node_capacity[v], options.eps);
      node_weight_[v] = eta > 0.0 ? inst.node_reconfig[v] / eta : 0.0;
    }
    link_weight_.resize(inst.num_links());
    for (std::size_t l = 0; l < inst.num_links(); ++l) {
      const double eta = regularizer_eta(inst.link_capacity[l], options.eps);
      link_weight_[l] = eta > 0.0 ? inst.link_reconfig[l] / eta : 0.0;
    }
  }

  std::size_t xvar(std::size_t v) const { return flow_count_ + v; }
  std::size_t yvar(std::size_t l) const {
    return flow_count_ + inst_.num_nodes() + l;
  }
  std::size_t size() const {
    return flow_count_ + inst_.num_nodes() + inst_.num_links();
  }

  double value(const Vec& z) const override {
    double total = 0.0;
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v) {
      total += price_row_[v] * z[xvar(v)];
      total += node_weight_[v] *
               entropic_value(z[xvar(v)], prev_.node[v], options_.eps);
    }
    for (std::size_t l = 0; l < inst_.num_links(); ++l) {
      total += inst_.link_price[l] * z[yvar(l)];
      total += link_weight_[l] *
               entropic_value(z[yvar(l)], prev_.link[l], options_.eps);
    }
    return total;
  }

  Vec gradient(const Vec& z) const override {
    Vec g(size(), 0.0);
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      g[xvar(v)] = price_row_[v] +
                   node_weight_[v] * entropic_gradient(
                                         z[xvar(v)], prev_.node[v],
                                         options_.eps);
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      g[yvar(l)] = inst_.link_price[l] +
                   link_weight_[l] * entropic_gradient(
                                         z[yvar(l)], prev_.link[l],
                                         options_.eps);
    return g;
  }

  Matrix hessian(const Vec& z) const override {
    Matrix h(size(), size(), 0.0);
    hessian_into(z, h);
    return h;
  }

  void gradient_into(const Vec& z, Vec& g) const override {
    std::fill(g.begin(), g.end(), 0.0);
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      g[xvar(v)] = price_row_[v] +
                   node_weight_[v] * entropic_gradient(
                                         z[xvar(v)], prev_.node[v],
                                         options_.eps);
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      g[yvar(l)] = inst_.link_price[l] +
                   link_weight_[l] * entropic_gradient(
                                         z[yvar(l)], prev_.link[l],
                                         options_.eps);
  }

  void hessian_into(const Vec& z, Matrix& h) const override {
    for (std::size_t r = 0; r < h.rows(); ++r) {
      double* row = h.row_ptr(r);
      std::fill(row, row + h.cols(), 0.0);
    }
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      h(xvar(v), xvar(v)) =
          node_weight_[v] * entropic_hessian(z[xvar(v)], options_.eps);
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      h(yvar(l), yvar(l)) =
          link_weight_[l] * entropic_hessian(z[yvar(l)], options_.eps);
  }

  // The n-tier objective has curvature only on the node/link aggregate
  // variables (flow variables are linear), so the sparse-Hessian pattern is
  // a partial diagonal.
  bool hessian_lower_structure(
      std::vector<linalg::Triplet>& pattern) const override {
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      pattern.push_back({xvar(v), xvar(v), 0.0});
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      pattern.push_back({yvar(l), yvar(l), 0.0});
    return true;
  }

  void hessian_lower_values_into(const Vec& z, Vec& values) const override {
    std::size_t k = 0;
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      values[k++] =
          node_weight_[v] * entropic_hessian(z[xvar(v)], options_.eps);
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      values[k++] =
          link_weight_[l] * entropic_hessian(z[yvar(l)], options_.eps);
  }

 private:
  const NTierInstance& inst_;
  Vec price_row_;
  const NTierAllocation& prev_;
  NTierRoaOptions options_;
  std::size_t flow_count_;
  Vec node_weight_, link_weight_;
};

}  // namespace

double ntier_slot_violation(const NTierInstance& inst, std::size_t t,
                            const NTierAllocation& alloc) {
  double worst = 0.0;
  for (std::size_t v = 0; v < inst.num_nodes(); ++v) {
    worst = std::max(worst, alloc.node[v] - inst.node_capacity[v]);
    worst = std::max(worst, -alloc.node[v]);
  }
  for (std::size_t l = 0; l < inst.num_links(); ++l) {
    worst = std::max(worst, alloc.link[l] - inst.link_capacity[l]);
    worst = std::max(worst, -alloc.link[l]);
  }
  // Coverage: minimize total shortage of a routing within (x, y).
  const FlowIndex fidx(inst);
  LpBuilder b;
  for (std::size_t f = 0; f < fidx.count; ++f) b.add_variable(0.0, kInf, 0.0);
  std::vector<std::size_t> shortage(inst.num_demands());
  for (std::size_t j = 0; j < inst.num_demands(); ++j)
    shortage[j] = b.add_variable(0.0, kInf, 1.0);
  auto fvar = [&fidx](std::size_t j, std::size_t pos) {
    return fidx.offset[j][pos];
  };
  // Coverage with shortage slack.
  for (std::size_t j = 0; j < inst.num_demands(); ++j) {
    std::vector<LinTerm> terms{{shortage[j], 1.0}};
    for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
      const auto& link = inst.links[fidx.link_of[j][pos]];
      if (link.tier == 0 && link.from == j)
        terms.push_back({fvar(j, pos), 1.0});
    }
    b.add_ge(terms, inst.demand[t][j]);
  }
  // Conservation out >= in.
  for (std::size_t j = 0; j < inst.num_demands(); ++j) {
    for (std::size_t n = 1; n + 1 < inst.num_tiers; ++n) {
      for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
        std::vector<LinTerm> terms;
        for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
          const auto& link = inst.links[fidx.link_of[j][pos]];
          if (link.tier == n && link.from == v)
            terms.push_back({fvar(j, pos), 1.0});
          else if (link.tier + 1 == n && link.to == v)
            terms.push_back({fvar(j, pos), -1.0});
        }
        if (!terms.empty()) b.add_ge(terms, 0.0);
      }
    }
  }
  // Resource limits from the given allocation.
  for (std::size_t n = 1; n < inst.num_tiers; ++n)
    for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
      std::vector<LinTerm> terms;
      for (std::size_t j = 0; j < inst.num_demands(); ++j)
        for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
          const auto& link = inst.links[fidx.link_of[j][pos]];
          if (link.tier + 1 == n && link.to == v)
            terms.push_back({fvar(j, pos), 1.0});
        }
      if (!terms.empty())
        b.add_le(terms, std::max(0.0, alloc.node[inst.node_key(n, v)]));
    }
  for (std::size_t l = 0; l < inst.num_links(); ++l) {
    std::vector<LinTerm> terms;
    for (std::size_t j = 0; j < inst.num_demands(); ++j)
      for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos)
        if (fidx.link_of[j][pos] == l) terms.push_back({fvar(j, pos), 1.0});
    if (!terms.empty()) b.add_le(terms, std::max(0.0, alloc.link[l]));
  }
  SolveOutcome lp_outcome;
  const auto sol =
      solve_lp_with_fallback(b.build(), solver::LpSolveOptions{}, &lp_outcome);
  if (!sol.ok()) {
    // Can't prove feasibility: report "maximally violated" so the caller's
    // repair step runs (it solves an independent LP) instead of aborting.
    SORA_LOG_WARN << "ntier: violation LP failed at t=" << t << " ("
                  << solver::to_string(sol.status)
                  << "); treating the slot as violated";
    return kInf;
  }
  return std::max(worst, sol.objective);
}

namespace {

// Per-run solver for the regularized slot subproblems P2-N(t). The routing
// polyhedron's structure depends only on the network, so the CSR constraint
// matrix is assembled ONCE; each slot patches the coverage right-hand sides
// and re-runs the sparse barrier IPM with reused scratch buffers.
class NTierSlotSolver {
 public:
  NTierSlotSolver(const NTierInstance& inst, const NTierRoaOptions& options)
      : inst_(inst), options_(options), fidx_(inst) {
    if (options_.decomposition.mode == DecompositionOptions::Mode::kForce) {
      // The n-tier slot problem couples commodities through the shared
      // per-node x_v and per-link y_l resource variables themselves, not
      // just through capacity rows, so the per-SLA-group block split of the
      // two-tier P2 does not exist here. Honour the request by saying why
      // it cannot be honoured, then solve monolithically.
      SORA_LOG_WARN << "ntier: decomposition forced but the slot problem "
                       "couples blocks through shared resource variables; "
                       "routing monolithic by structure";
    }
    build_constraints();
  }

  NTierAllocation solve(const InputsView& view, std::size_t t,
                        const NTierAllocation& prev,
                        SolveOutcome* outcome_out = nullptr) {
    SORA_TRACE_SPAN("ntier/slot");
    const Vec demand_row = view.demand_row(t);
    check_demand_reachable(inst_, demand_row, t);
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      price_row_[v] = view.price(t, v);
    for (std::size_t j = 0; j < inst_.num_demands(); ++j)
      // A linkless commodity's coverage row has no flow variables, so
      // "0 >= 0" would leave the barrier without a strict interior. Its
      // demand is zero (check_demand_reachable above); relax the empty row.
      h_[coverage_h_[j]] =
          fidx_.link_of[j].empty() ? 1.0 : -demand_row[j];

    const NTierP2Objective objective(inst_, price_row_, prev, options_,
                                     fidx_.count);

    // Strictly feasible start: even spread with tier-increasing inflation so
    // every "out >= in" row is strictly slack.
    Vec z(num_vars(), 1e-7);
    for (std::size_t j = 0; j < inst_.num_demands(); ++j) {
      // Push commodity j's demand through its admissible links evenly,
      // inflating by 1% per tier.
      Vec holding(inst_.num_nodes(), 0.0);
      holding[inst_.node_key(0, j)] = demand_row[j] * 1.01 + 1e-6;
      for (std::size_t tier = 0; tier + 1 < inst_.num_tiers; ++tier) {
        for (std::size_t v = 0; v < inst_.tier_sizes[tier]; ++v) {
          const std::size_t key = inst_.node_key(tier, v);
          if (holding[key] <= 0.0) continue;
          // Out-links admissible for j at this node.
          std::vector<std::size_t> outs;
          for (std::size_t pos = 0; pos < fidx_.link_of[j].size(); ++pos) {
            const auto& link = inst_.links[fidx_.link_of[j][pos]];
            if (link.tier == tier && link.from == v) outs.push_back(pos);
          }
          if (outs.empty()) continue;
          const double share =
              holding[key] * 1.01 / static_cast<double>(outs.size());
          for (const std::size_t pos : outs) {
            z[fidx_.offset[j][pos]] += share;
            const auto& link = inst_.links[fidx_.link_of[j][pos]];
            holding[inst_.node_key(link.tier + 1, link.to)] += share;
          }
          holding[key] = 0.0;
        }
      }
    }
    // Resources strictly above the implied flows.
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      z[objective.xvar(v)] = 0.0;
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      z[objective.yvar(l)] = 0.0;
    for (std::size_t j = 0; j < inst_.num_demands(); ++j)
      for (std::size_t pos = 0; pos < fidx_.link_of[j].size(); ++pos) {
        const double f = z[fidx_.offset[j][pos]];
        const auto& link = inst_.links[fidx_.link_of[j][pos]];
        z[objective.yvar(fidx_.link_of[j][pos])] += f;
        z[objective.xvar(inst_.node_key(link.tier + 1, link.to))] += f;
      }
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      z[objective.xvar(v)] = z[objective.xvar(v)] * 1.01 + 1e-6;
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      z[objective.yvar(l)] = z[objective.yvar(l)] * 1.01 + 1e-6;

    const ResilienceOptions& res = options_.resilience;
    SolveOutcome outcome;
    std::size_t attempt = 0;
    solver::IpmResult result;
    const auto note = [&outcome](const std::string& what) {
      if (!outcome.detail.empty()) outcome.detail += "; ";
      outcome.detail += what;
    };
    const auto barrier_attempt = [&](const solver::IpmOptions& o,
                                     SolveBackend backend) {
      result = solver::solve_barrier(objective, g_, h_, z, o, &scratch_);
      apply_fault(consult_fault_hook(t, attempt), result.status, result.x);
      if (result.ok() && !all_finite(result.x)) {
        result.status = solver::SolveStatus::kNumericalError;
        result.detail += result.detail.empty() ? "non-finite solution"
                                               : " [non-finite solution]";
      }
      ++attempt;
      outcome.backend = backend;
      outcome.status = result.status;
      if (!result.ok())
        note(std::string(to_string(backend)) + ": " +
             (result.detail.empty() ? solver::to_string(result.status)
                                    : result.detail));
      return result.ok();
    };

    bool solved = barrier_attempt(options_.ipm, SolveBackend::kColdIpm);
    if (!solved && !res.enabled)
      SORA_CHECK_MSG(false, "n-tier P2 failed at t=" + std::to_string(t) +
                                ": " + outcome.detail);
    if (!solved) {
      SORA_LOG_WARN << "ntier: P2 barrier failed at t=" << t << " ("
                    << outcome.detail << "); entering fallback chain";
      if (res.allow_tightened) {
        // Conservative restart: smaller barrier growth, bigger budgets.
        solver::IpmOptions tight = options_.ipm;
        tight.mu = 5.0;
        tight.max_newton_steps *= 4;
        tight.max_steps_per_center *= 2;
        solved = barrier_attempt(tight, SolveBackend::kTightenedIpm);
      }
    }

    NTierAllocation a{Vec(inst_.num_nodes(), 0.0),
                      Vec(inst_.num_links(), 0.0)};
    if (solved) {
      for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
        a.node[v] = inst_.node_capacity[v] > 0.0
                        ? std::max(0.0, result.x[objective.xvar(v)])
                        : 0.0;
      for (std::size_t l = 0; l < inst_.num_links(); ++l)
        a.link[l] = inst_.link_capacity[l] > 0.0
                        ? std::max(0.0, result.x[objective.yvar(l)])
                        : 0.0;
    }
    if (!solved && res.allow_lp_fallback) {
      // One-shot LP on the same slot: linear prices plus the linear
      // reconfiguration surrogate over the identical routing polyhedron.
      bool window_ok = true;
      SolveOutcome lp_outcome;
      const NTierTrajectory one =
          solve_ntier_window(inst_, view, t, t + 1, prev, nullptr,
                             solver::LpSolveOptions{}, &window_ok,
                             &lp_outcome, t, attempt);
      attempt += lp_outcome.attempts;
      outcome.backend = lp_outcome.backend;
      outcome.status = lp_outcome.status;
      if (!lp_outcome.detail.empty()) note(lp_outcome.detail);
      if (window_ok) {
        a = one.slots[0];
        solved = true;
      }
    }
    if (!solved && res.allow_degradation) {
      // Graceful degradation: hold x_{t-1} and repair coverage with the
      // cheapest additive push. Terminal stage, never fault-injected.
      ++attempt;
      bool repaired = false;
      SolveOutcome rep;
      a = ntier_repair(inst_, t, prev, solver::LpSolveOptions{}, &repaired,
                       &rep);
      outcome.backend = SolveBackend::kHoldRepair;
      if (rep.ok()) {
        solved = true;
        outcome.status = solver::SolveStatus::kOptimal;
        outcome.degraded = true;
        outcome.repair_cost_delta = rep.repair_cost_delta;
      } else {
        outcome.status = rep.status;
        note("hold_repair: " + (rep.detail.empty()
                                    ? std::string(solver::to_string(rep.status))
                                    : rep.detail));
      }
    }
    outcome.attempts = attempt;
    observe_outcome(outcome);
    if (!solved) {
      if (res.throw_on_exhaustion)
        SORA_CHECK_MSG(false, "n-tier P2 fallback chain exhausted at t=" +
                                  std::to_string(t) + ": " + outcome.detail);
      SORA_LOG_ERROR << "ntier: fallback chain exhausted at t=" << t << " ("
                     << outcome.detail << "); holding the previous decision";
      a = prev;
    }
    if (outcome_out != nullptr) *outcome_out = outcome;
    return a;
  }

 private:
  std::size_t num_vars() const {
    return fidx_.count + inst_.num_nodes() + inst_.num_links();
  }

  void build_constraints() {
    // Constraint polyhedron via an LpBuilder (reusing the routing rows) with
    // placeholder zero demands, then converted to CSR G z <= h. Coverage
    // rows are the first num_demands() >= rows; their right-hand sides are
    // the only slot-dependent part, patched in solve().
    // Zero-capacity resources (tier-0 nodes, unreachable links) have an
    // empty strict interior at [0, 0]; give them a tiny slack bound for the
    // barrier and zero them on extraction.
    constexpr double kTinyBound = 1e-4;
    const std::size_t n = num_vars();
    LpBuilder b;
    for (std::size_t f = 0; f < fidx_.count; ++f)
      b.add_variable(0.0, kInf, 0.0);
    for (std::size_t v = 0; v < inst_.num_nodes(); ++v)
      b.add_variable(0.0, std::max(inst_.node_capacity[v], kTinyBound), 0.0);
    for (std::size_t l = 0; l < inst_.num_links(); ++l)
      b.add_variable(0.0, std::max(inst_.link_capacity[l], kTinyBound), 0.0);
    const std::size_t V = inst_.num_nodes();
    add_routing_rows(
        inst_, Vec(inst_.num_demands(), 0.0), b, fidx_,
        [this](std::size_t j, std::size_t pos) {
          return fidx_.offset[j][pos];
        },
        [this](std::size_t v) { return fidx_.count + v; },
        [this, V](std::size_t l) { return fidx_.count + V + l; });
    const solver::LpModel cons = b.build();

    std::vector<linalg::Triplet> trips;
    std::size_t r = 0;
    coverage_h_.assign(inst_.num_demands(), static_cast<std::size_t>(-1));
    const auto& offs = cons.a.row_offsets();
    const auto& cidx = cons.a.col_indices();
    const auto& cval = cons.a.values();
    for (std::size_t lp_r = 0; lp_r < cons.num_rows(); ++lp_r) {
      if (std::isfinite(cons.row_lower[lp_r])) {  // a z >= l  ->  -a z <= -l
        for (std::size_t kk = offs[lp_r]; kk < offs[lp_r + 1]; ++kk)
          trips.push_back({r, cidx[kk], -cval[kk]});
        h_.push_back(-cons.row_lower[lp_r]);
        if (lp_r < inst_.num_demands()) coverage_h_[lp_r] = r;
        ++r;
      }
      if (std::isfinite(cons.row_upper[lp_r])) {
        for (std::size_t kk = offs[lp_r]; kk < offs[lp_r + 1]; ++kk)
          trips.push_back({r, cidx[kk], cval[kk]});
        h_.push_back(cons.row_upper[lp_r]);
        ++r;
      }
    }
    for (std::size_t c2 = 0; c2 < n; ++c2) {
      if (std::isfinite(cons.var_lower[c2])) {
        trips.push_back({r, c2, -1.0});
        h_.push_back(-cons.var_lower[c2]);
        ++r;
      }
      if (std::isfinite(cons.var_upper[c2])) {
        trips.push_back({r, c2, 1.0});
        h_.push_back(cons.var_upper[c2]);
        ++r;
      }
    }
    g_ = linalg::SparseMatrix::from_triplets(r, n, std::move(trips));
    price_row_.assign(inst_.num_nodes(), 0.0);
  }

  const NTierInstance& inst_;
  NTierRoaOptions options_;
  FlowIndex fidx_;
  linalg::SparseMatrix g_;
  Vec h_;
  std::vector<std::size_t> coverage_h_;  // h index of commodity j's coverage
  Vec price_row_;
  solver::IpmScratch scratch_;
};

}  // namespace

NTierTrajectory run_ntier_roa(const NTierInstance& inst,
                              const NTierRoaOptions& options,
                              const NTierInputs* inputs,
                              NTierRoaHealth* health) {
  SORA_TRACE_SPAN("ntier/run");
  const InputsView view{inst, inputs};
  NTierSlotSolver solver(inst, options);
  NTierTrajectory traj;
  NTierAllocation prev{Vec(inst.num_nodes(), 0.0), Vec(inst.num_links(), 0.0)};
  obs::SlotSloTracker slo(options.slo);
  static obs::Counter* slots = &obs::Registry::global().counter(
      "sora_ntier_slots_total", "N-tier ROA slots solved");
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    SolveOutcome outcome;
    util::Timer slot_timer;
    prev = solver.solve(view, t, prev, &outcome);
    const double slot_seconds = slot_timer.seconds();
    slo.record(to_slot_sample(outcome, slot_seconds));
    record_flight("ntier_slot", t, outcome, slot_seconds);
    traj.slots.push_back(prev);
    if (health != nullptr) {
      health->slot_health.push_back(SlotHealth{t, outcome.status,
                                               outcome.backend,
                                               outcome.attempts,
                                               outcome.degraded,
                                               outcome.repair_cost_delta});
      if (outcome.fell_back()) ++health->fallback_slots;
      if (outcome.degraded) ++health->degraded_slots;
      health->repair_cost_delta += outcome.repair_cost_delta;
    }
    if (obs::metrics_enabled()) slots->inc();
  }
  if (health != nullptr) health->slo = slo.report();
  return traj;
}

NTierTrajectory run_ntier_greedy(const NTierInstance& inst,
                                 const solver::LpSolveOptions& lp) {
  const InputsView view{inst, nullptr};
  NTierTrajectory traj;
  NTierAllocation prev{Vec(inst.num_nodes(), 0.0), Vec(inst.num_links(), 0.0)};
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    NTierTrajectory slot =
        solve_ntier_window(inst, view, t, t + 1, prev, nullptr, lp);
    prev = slot.slots[0];
    traj.slots.push_back(std::move(slot.slots[0]));
  }
  return traj;
}

NTierTrajectory run_ntier_offline(const NTierInstance& inst,
                                  const solver::LpSolveOptions& lp) {
  const InputsView view{inst, nullptr};
  const NTierAllocation zero{Vec(inst.num_nodes(), 0.0),
                             Vec(inst.num_links(), 0.0)};
  return solve_ntier_window(inst, view, 0, inst.horizon, zero, nullptr, lp);
}

NTierAllocation ntier_repair(const NTierInstance& inst, std::size_t t,
                             const NTierAllocation& planned,
                             const solver::LpSolveOptions& lp,
                             bool* repaired, SolveOutcome* outcome) {
  if (repaired != nullptr) *repaired = false;
  if (outcome != nullptr) {
    *outcome = SolveOutcome{};
    outcome->status = solver::SolveStatus::kOptimal;
    outcome->backend = SolveBackend::kHoldRepair;
  }
  if (ntier_slot_violation(inst, t, planned) <= 1e-7) return planned;
  if (repaired != nullptr) *repaired = true;

  // Minimal additive buy: route the TRUE demand with resources
  // planned + (dx, dy), paying allocation + reconfiguration on the deltas.
  const FlowIndex fidx(inst);
  const std::size_t V = inst.num_nodes();
  const std::size_t L = inst.num_links();
  LpBuilder b;
  for (std::size_t f = 0; f < fidx.count; ++f) b.add_variable(0.0, kInf, 0.0);
  for (std::size_t v = 0; v < V; ++v) {
    const double headroom =
        std::max(0.0, inst.node_capacity[v] - planned.node[v]);
    b.add_variable(0.0, headroom,
                   inst.node_price[t][v] + inst.node_reconfig[v]);
  }
  for (std::size_t l = 0; l < L; ++l) {
    const double headroom =
        std::max(0.0, inst.link_capacity[l] - planned.link[l]);
    b.add_variable(0.0, headroom,
                   inst.link_price[l] + inst.link_reconfig[l]);
  }
  // Routing rows against the EFFECTIVE resources planned + delta: the node
  // and link rows become x_planned + dx >= inflow, i.e. dx >= inflow - plan.
  // add_routing_rows writes "resource - inflow >= 0" with the resource
  // variable's coefficient +1, so shifting the rhs is equivalent; we emulate
  // it by passing delta vars and then correcting the rows' rhs via extra
  // constant terms — easiest done by building the rows manually here.
  auto fvar = [&fidx](std::size_t j, std::size_t pos) {
    return fidx.offset[j][pos];
  };
  auto dxvar = [&fidx](std::size_t v) { return fidx.count + v; };
  auto dyvar = [&fidx, V](std::size_t l) { return fidx.count + V + l; };

  for (std::size_t j = 0; j < inst.num_demands(); ++j) {
    std::vector<LinTerm> terms;
    for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
      const auto& link = inst.links[fidx.link_of[j][pos]];
      if (link.tier == 0 && link.from == j)
        terms.push_back({fvar(j, pos), 1.0});
    }
    b.add_ge(terms, inst.demand[t][j]);
  }
  for (std::size_t j = 0; j < inst.num_demands(); ++j)
    for (std::size_t n = 1; n + 1 < inst.num_tiers; ++n)
      for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
        std::vector<LinTerm> terms;
        for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
          const auto& link = inst.links[fidx.link_of[j][pos]];
          if (link.tier == n && link.from == v)
            terms.push_back({fvar(j, pos), 1.0});
          else if (link.tier + 1 == n && link.to == v)
            terms.push_back({fvar(j, pos), -1.0});
        }
        if (!terms.empty()) b.add_ge(terms, 0.0);
      }
  for (std::size_t n = 1; n < inst.num_tiers; ++n)
    for (std::size_t v = 0; v < inst.tier_sizes[n]; ++v) {
      const std::size_t key = inst.node_key(n, v);
      std::vector<LinTerm> terms{{dxvar(key), 1.0}};
      for (std::size_t j = 0; j < inst.num_demands(); ++j)
        for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos) {
          const auto& link = inst.links[fidx.link_of[j][pos]];
          if (link.tier + 1 == n && link.to == v)
            terms.push_back({fvar(j, pos), -1.0});
        }
      b.add_ge(terms, -planned.node[key]);
    }
  for (std::size_t l = 0; l < L; ++l) {
    std::vector<LinTerm> terms{{dyvar(l), 1.0}};
    for (std::size_t j = 0; j < inst.num_demands(); ++j)
      for (std::size_t pos = 0; pos < fidx.link_of[j].size(); ++pos)
        if (fidx.link_of[j][pos] == l) terms.push_back({fvar(j, pos), -1.0});
    b.add_ge(terms, -planned.link[l]);
  }

  SolveOutcome lp_outcome;
  const auto sol = solve_lp_with_fallback(b.build(), lp, &lp_outcome);
  if (!sol.ok()) {
    if (outcome != nullptr) {
      *outcome = lp_outcome;
      SORA_LOG_ERROR << "ntier: repair LP failed at t=" << t << " ("
                     << solver::to_string(sol.status)
                     << "); returning the planned allocation unrepaired";
      return planned;
    }
    SORA_CHECK_MSG(false, "n-tier repair LP failed at t=" +
                              std::to_string(t) + ": " + sol.detail);
  }
  if (outcome != nullptr) {
    *outcome = lp_outcome;
    outcome->backend = SolveBackend::kHoldRepair;
    outcome->repair_cost_delta = sol.objective;
  }
  NTierAllocation out = planned;
  for (std::size_t v = 0; v < V; ++v)
    out.node[v] += std::max(0.0, sol.x[dxvar(v)]);
  for (std::size_t l = 0; l < L; ++l)
    out.link[l] += std::max(0.0, sol.x[dyvar(l)]);
  return out;
}

namespace {

// Forecast series for the N-tier controllers (zero-mean Gaussian noise,
// sd = error_pct * temporal mean, mirroring the two-tier model).
struct NTierForecast {
  std::vector<std::vector<double>> demand;
  std::vector<std::vector<double>> node_price;

  NTierForecast(const NTierInstance& inst, double error_pct,
                std::uint64_t seed)
      : demand(inst.demand), node_price(inst.node_price) {
    if (error_pct <= 0.0) return;
    util::Rng rng(seed);
    for (std::size_t j = 0; j < inst.num_demands(); ++j) {
      double mean = 0.0;
      for (std::size_t t = 0; t < inst.horizon; ++t) mean += inst.demand[t][j];
      mean /= static_cast<double>(inst.horizon);
      for (std::size_t t = 0; t < inst.horizon; ++t)
        demand[t][j] = std::max(
            0.0, demand[t][j] + rng.normal(0.0, error_pct * mean));
    }
    for (std::size_t v = 0; v < inst.num_nodes(); ++v) {
      double mean = 0.0;
      for (std::size_t t = 0; t < inst.horizon; ++t)
        mean += inst.node_price[t][v];
      mean /= static_cast<double>(inst.horizon);
      for (std::size_t t = 0; t < inst.horizon; ++t)
        node_price[t][v] = std::max(
            1e-3, node_price[t][v] + rng.normal(0.0, error_pct * mean));
    }
  }

  void observe(const NTierInstance& inst, std::size_t t) {
    demand[t] = inst.demand[t];
    node_price[t] = inst.node_price[t];
  }

  NTierInputs inputs() const { return {&demand, &node_price}; }
};

struct NTierApplier {
  const NTierInstance& inst;
  const solver::LpSolveOptions& lp;
  NTierControlRun run;
  NTierAllocation prev;

  NTierApplier(const NTierInstance& inst_, const solver::LpSolveOptions& lp_,
               std::string name)
      : inst(inst_), lp(lp_),
        prev{Vec(inst_.num_nodes(), 0.0), Vec(inst_.num_links(), 0.0)} {
    run.algorithm = std::move(name);
  }

  void apply(std::size_t t, const NTierAllocation& planned) {
    bool repaired = false;
    SolveOutcome rep;
    NTierAllocation final_alloc =
        ntier_repair(inst, t, planned, lp, &repaired, &rep);
    if (repaired) ++run.repairs;
    if (!rep.ok()) {
      // A failed repair must not kill the run: apply the planned decision
      // unrepaired and account the slot as a failed repair.
      ++run.failed_repairs;
    }
    prev = final_alloc;
    run.trajectory.slots.push_back(std::move(final_alloc));
  }

  NTierControlRun finish() {
    run.cost = ntier_total_cost(inst, run.trajectory);
    return std::move(run);
  }
};

}  // namespace

NTierControlRun run_ntier_fhc(const NTierInstance& inst,
                              const NTierControlOptions& options) {
  SORA_CHECK(options.window >= 1);
  NTierForecast forecast(inst, options.error_pct, options.noise_seed);
  NTierApplier applier(inst, options.lp, "FHC");
  for (std::size_t t0 = 0; t0 < inst.horizon; t0 += options.window) {
    const std::size_t t1 = std::min(inst.horizon, t0 + options.window);
    forecast.observe(inst, t0);
    const NTierInputs in = forecast.inputs();
    const InputsView view{inst, &in};
    bool window_ok = true;
    const NTierTrajectory block =
        solve_ntier_window(inst, view, t0, t1, applier.prev, nullptr,
                           options.lp, &window_ok);
    if (!window_ok) applier.run.degraded_slots += block.slots.size();
    for (std::size_t rel = 0; rel < block.slots.size(); ++rel)
      applier.apply(t0 + rel, block.slots[rel]);
  }
  return applier.finish();
}

NTierControlRun run_ntier_rhc(const NTierInstance& inst,
                              const NTierControlOptions& options) {
  SORA_CHECK(options.window >= 1);
  NTierForecast forecast(inst, options.error_pct, options.noise_seed);
  NTierApplier applier(inst, options.lp, "RHC");
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    const std::size_t t1 = std::min(inst.horizon, t + options.window);
    forecast.observe(inst, t);
    const NTierInputs in = forecast.inputs();
    const InputsView view{inst, &in};
    bool window_ok = true;
    const NTierTrajectory window =
        solve_ntier_window(inst, view, t, t1, applier.prev, nullptr,
                           options.lp, &window_ok);
    if (!window_ok) ++applier.run.degraded_slots;
    applier.apply(t, window.slots[0]);
  }
  return applier.finish();
}

NTierControlRun run_ntier_rfhc(const NTierInstance& inst,
                               const NTierControlOptions& options) {
  SORA_CHECK(options.window >= 1);
  NTierForecast forecast(inst, options.error_pct, options.noise_seed);
  NTierApplier applier(inst, options.lp, "RFHC");
  NTierSlotSolver slot_solver(inst, options.roa);
  for (std::size_t t0 = 0; t0 < inst.horizon; t0 += options.window) {
    const std::size_t t1 = std::min(inst.horizon, t0 + options.window);
    forecast.observe(inst, t0);
    const NTierInputs in = forecast.inputs();
    const InputsView view{inst, &in};
    // Regularized chain across the block.
    std::vector<NTierAllocation> chain;
    NTierAllocation chain_prev = applier.prev;
    for (std::size_t t = t0; t < t1; ++t) {
      SolveOutcome oc;
      chain_prev = slot_solver.solve(view, t, chain_prev, &oc);
      if (oc.degraded) ++applier.run.degraded_slots;
      chain.push_back(chain_prev);
    }
    if (t1 - t0 == 1) {
      applier.apply(t0, chain[0]);
      continue;
    }
    bool window_ok = true;
    const NTierTrajectory block = solve_ntier_window(
        inst, view, t0, t1, applier.prev, &chain.back(), options.lp,
        &window_ok);
    if (!window_ok) applier.run.degraded_slots += block.slots.size();
    for (std::size_t rel = 0; rel < block.slots.size(); ++rel)
      applier.apply(t0 + rel, block.slots[rel]);
  }
  return applier.finish();
}

NTierControlRun run_ntier_rrhc(const NTierInstance& inst,
                               const NTierControlOptions& options) {
  SORA_CHECK(options.window >= 1);
  const std::size_t w = options.window;
  NTierForecast forecast(inst, options.error_pct, options.noise_seed);
  forecast.observe(inst, 0);

  std::vector<NTierAllocation> chain;
  NTierAllocation chain_prev{Vec(inst.num_nodes(), 0.0),
                             Vec(inst.num_links(), 0.0)};
  NTierApplier applier(inst, options.lp, "RRHC");
  NTierSlotSolver slot_solver(inst, options.roa);
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    forecast.observe(inst, t);
    const NTierInputs in = forecast.inputs();
    const InputsView view{inst, &in};
    const std::size_t t1 = std::min(inst.horizon, t + w);
    while (chain.size() < t1) {
      SolveOutcome oc;
      chain_prev = slot_solver.solve(view, chain.size(), chain_prev, &oc);
      if (oc.degraded) ++applier.run.degraded_slots;
      chain.push_back(chain_prev);
    }
    if (t1 - t == 1) {
      applier.apply(t, chain[t]);
      continue;
    }
    bool window_ok = true;
    const NTierTrajectory window = solve_ntier_window(
        inst, view, t, t1, applier.prev, &chain[t1 - 1], options.lp,
        &window_ok);
    if (!window_ok) ++applier.run.degraded_slots;
    applier.apply(t, window.slots[0]);
  }
  return applier.finish();
}

}  // namespace sora::core
