// sora_obs tracing: JSON well-formedness, span nesting, per-thread buffers,
// and the event cap.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace sora::obs {
namespace {

struct TraceOn {
  TraceOn() {
    set_trace_enabled(true);
    trace_clear();
  }
  ~TraceOn() {
    set_trace_enabled(false);
    trace_clear();
    set_trace_max_events_per_thread(std::size_t{1} << 16);
  }
};

struct SpanRecord {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
  double tid = 0.0;
  double depth = 0.0;
  double end() const { return ts + dur; }
};

std::vector<SpanRecord> parse_spans(const std::string& body) {
  const json::Value doc = json::parse(body);
  std::vector<SpanRecord> spans;
  for (const json::Value& ev : doc.at("traceEvents").as_array()) {
    EXPECT_EQ(ev.at("ph").as_string(), "X");
    EXPECT_EQ(ev.at("cat").as_string(), "sora");
    SpanRecord s;
    s.name = ev.at("name").as_string();
    s.ts = ev.at("ts").as_number();
    s.dur = ev.at("dur").as_number();
    s.tid = ev.at("tid").as_number();
    s.depth = ev.at("args").at("depth").as_number();
    spans.push_back(std::move(s));
  }
  return spans;
}

const SpanRecord& find_span(const std::vector<SpanRecord>& spans,
                            const std::string& name) {
  for (const SpanRecord& s : spans)
    if (s.name == name) return s;
  ADD_FAILURE() << "span not found: " << name;
  static const SpanRecord empty;
  return empty;
}

TEST(ObsTrace, DisabledRecordsNothing) {
  set_trace_enabled(false);
  trace_clear();
  {
    SORA_TRACE_SPAN("should_not_appear");
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(ObsTrace, NestedSpansAreContainedAndDepthTagged) {
  TraceOn on;
  {
    SORA_TRACE_SPAN("outer");
    {
      SORA_TRACE_SPAN("middle");
      { SORA_TRACE_SPAN("inner"); }
    }
    { SORA_TRACE_SPAN("sibling"); }
  }
  const auto spans = parse_spans(render_trace_json());
  ASSERT_EQ(spans.size(), 4u);
  const SpanRecord& outer = find_span(spans, "outer");
  const SpanRecord& middle = find_span(spans, "middle");
  const SpanRecord& inner = find_span(spans, "inner");
  const SpanRecord& sibling = find_span(spans, "sibling");

  EXPECT_EQ(outer.depth, 0.0);
  EXPECT_EQ(middle.depth, 1.0);
  EXPECT_EQ(inner.depth, 2.0);
  EXPECT_EQ(sibling.depth, 1.0);

  // Containment (the exporter rounds timestamps to 1e-3 us).
  const double eps = 2e-3;
  EXPECT_LE(outer.ts, middle.ts + eps);
  EXPECT_GE(outer.end() + eps, middle.end());
  EXPECT_LE(middle.ts, inner.ts + eps);
  EXPECT_GE(middle.end() + eps, inner.end());
  // Siblings do not overlap.
  EXPECT_GE(sibling.ts + eps, middle.end());

  // Same thread throughout.
  EXPECT_EQ(outer.tid, middle.tid);
  EXPECT_EQ(outer.tid, inner.tid);
}

TEST(ObsTrace, ThreadsGetDistinctTids) {
  TraceOn on;
  {
    SORA_TRACE_SPAN("main_thread");
  }
  std::thread worker([] { SORA_TRACE_SPAN("worker_thread"); });
  worker.join();
  const auto spans = parse_spans(render_trace_json());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_NE(find_span(spans, "main_thread").tid,
            find_span(spans, "worker_thread").tid);
}

TEST(ObsTrace, EventCapDropsAndCounts) {
  TraceOn on;
  set_trace_max_events_per_thread(10);
  for (int i = 0; i < 25; ++i) {
    SORA_TRACE_SPAN("capped");
  }
  EXPECT_EQ(trace_event_count(), 10u);
  const json::Value doc = json::parse(render_trace_json());
  const json::Value& meta = doc.at("soraTraceMeta");
  EXPECT_DOUBLE_EQ(meta.at("events").as_number(), 10.0);
  EXPECT_DOUBLE_EQ(meta.at("dropped").as_number(), 15.0);
}

TEST(ObsTrace, WriteFileEmitsParseableJson) {
  TraceOn on;
  {
    SORA_TRACE_SPAN("file_span");
  }
  const std::string path = ::testing::TempDir() + "sora_obs_trace.json";
  write_trace_file(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  const auto spans = parse_spans(body);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "file_span");
}

}  // namespace
}  // namespace sora::obs
