file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_noisy.dir/bench_fig9_noisy.cpp.o"
  "CMakeFiles/bench_fig9_noisy.dir/bench_fig9_noisy.cpp.o.d"
  "bench_fig9_noisy"
  "bench_fig9_noisy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_noisy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
