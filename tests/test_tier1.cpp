// The full three-term model (F_1 + F_12 + F_2): the paper's tier-1
// processing dimension z, which the paper drops from P1 "for ease of
// presentation" and notes all techniques carry over to. These tests verify
// the carry-over: accounting, feasibility semantics (min over x, y, z),
// Lemma-1-style per-slot feasibility of the regularized subproblem, the
// online-vs-offline ordering, predictive repair, and the regression that a
// z-free instance behaves exactly as before.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/lcp_m.hpp"
#include "baselines/offline.hpp"
#include "baselines/oneshot.hpp"
#include "core/competitive.hpp"
#include "core/cost.hpp"
#include "core/p1_model.hpp"
#include "core/predictive.hpp"
#include "core/roa.hpp"
#include "core/single_resource.hpp"
#include "util/rng.hpp"

namespace sora::core {
namespace {

using cloudnet::InstanceConfig;

Instance make_instance(std::size_t horizon, double reconfig_weight,
                       std::uint64_t seed, bool with_tier1 = true) {
  util::Rng rng(seed);
  const auto trace = cloudnet::wikipedia_like(horizon, rng);
  InstanceConfig cfg;
  cfg.num_tier2 = 3;
  cfg.num_tier1 = 5;
  cfg.sla_k = 2;
  cfg.reconfig_weight = reconfig_weight;
  cfg.seed = seed;
  cfg.model_tier1 = with_tier1;
  return cloudnet::build_instance(cfg, trace);
}

TEST(Tier1, InstanceCarriesTheDimension) {
  const Instance inst = make_instance(6, 10.0, 1);
  EXPECT_TRUE(inst.has_tier1());
  EXPECT_EQ(inst.tier1_capacity.size(), inst.num_tier1());
  EXPECT_EQ(inst.tier1_price.size(), inst.horizon);
  for (std::size_t j = 0; j < inst.num_tier1(); ++j)
    EXPECT_NEAR(inst.tier1_capacity[j], 1.25, 1e-9);  // margin * peak(=1)
  const auto report = cloudnet::validate_instance(inst);
  EXPECT_TRUE(report.ok) << (report.problems.empty() ? ""
                                                     : report.problems[0]);
}

TEST(Tier1, DisabledInstanceHasNoDimension) {
  const Instance inst = make_instance(6, 10.0, 1, /*with_tier1=*/false);
  EXPECT_FALSE(inst.has_tier1());
}

TEST(Tier1, AllocationCostIncludesZ) {
  const Instance inst = make_instance(3, 10.0, 2);
  Allocation a = Allocation::zeros(inst.num_edges());
  a.z[0] = 2.0;
  const std::size_t j = inst.edges[0].tier1;
  EXPECT_NEAR(slot_allocation_cost(inst, 0, a),
              2.0 * inst.tier1_price[0][j], 1e-12);
}

TEST(Tier1, ReconfigurationAggregatesPerTier1Cloud) {
  const Instance inst = make_instance(3, 7.0, 3);
  // Two edges of the same tier-1 cloud: moving z between them is free.
  std::size_t j = 0;
  ASSERT_GE(inst.edges_of_tier1[j].size(), 2u);
  const std::size_t e1 = inst.edges_of_tier1[j][0];
  const std::size_t e2 = inst.edges_of_tier1[j][1];
  Allocation a = Allocation::zeros(inst.num_edges());
  Allocation b = Allocation::zeros(inst.num_edges());
  a.z[e1] = 1.5;
  b.z[e2] = 1.5;
  EXPECT_DOUBLE_EQ(reconfiguration_cost(inst, a, b), 0.0);
  // Growing the aggregate costs f_j per unit.
  Allocation c = Allocation::zeros(inst.num_edges());
  c.z[e1] = 3.0;
  EXPECT_NEAR(reconfiguration_cost(inst, a, c),
              inst.tier1_reconfig[j] * 1.5, 1e-12);
}

TEST(Tier1, CoverageRequiresZ) {
  const Instance inst = make_instance(3, 10.0, 4);
  Allocation a = Allocation::zeros(inst.num_edges());
  a.x = inst.even_split(0);
  a.y = a.x;
  // Without z the slot is NOT covered (min includes z = 0).
  EXPECT_GT(slot_violation(inst, 0, a), 0.5);
  a.z = a.x;
  EXPECT_LE(slot_violation(inst, 0, a), 1e-9);
}

TEST(Tier1, OneShotCoversWithZ) {
  const Instance inst = make_instance(5, 20.0, 5);
  const Allocation a = solve_one_shot(inst, InputSeries::truth(inst), 0,
                                      Allocation::zeros(inst.num_edges()));
  EXPECT_LE(slot_violation(inst, 0, a), 1e-6);
  double z_total = 0.0;
  for (double v : a.z) z_total += v;
  EXPECT_NEAR(z_total, inst.total_demand(0), 1e-5);
}

TEST(Tier1, OfflineBeatsGreedy) {
  const Instance inst = make_instance(8, 200.0, 6);
  const auto greedy = baselines::run_one_shot_sequence(inst);
  const auto offline = baselines::run_offline_optimum(inst);
  EXPECT_TRUE(is_feasible(inst, greedy.trajectory, 1e-6));
  EXPECT_TRUE(is_feasible(inst, offline.trajectory, 1e-6));
  EXPECT_LE(offline.cost.total(), greedy.cost.total() + 1e-6);
}

TEST(Tier1, RoaFeasibleEverySlot) {
  const Instance inst = make_instance(6, 100.0, 7);
  const RoaRun run = run_roa(inst);
  for (std::size_t t = 0; t < inst.horizon; ++t)
    EXPECT_LE(slot_violation(inst, t, run.trajectory.slots[t]), 1e-5)
        << "t=" << t;
}

TEST(Tier1, RoaBeatsGreedyWithExpensiveReconfig) {
  const Instance inst = make_instance(14, 500.0, 8);
  const RoaRun roa = run_roa(inst);
  const auto greedy = baselines::run_one_shot_sequence(inst);
  const auto offline = baselines::run_offline_optimum(inst);
  EXPECT_LT(roa.cost.total(), greedy.cost.total());
  EXPECT_GE(roa.cost.total(), offline.cost.total() - 1e-6);
}

TEST(Tier1, TheoreticalRatioGrowsWithF1Term) {
  const Instance with = make_instance(4, 10.0, 9, true);
  const Instance without = make_instance(4, 10.0, 9, false);
  EXPECT_GT(theoretical_ratio(with, 0.1, 0.1),
            theoretical_ratio(without, 0.1, 0.1));
}

TEST(Tier1, SeparableInstanceMatchesSingleResourceOracle) {
  // 1x1 topology: the z-aggregate decouples into its own single-resource
  // recursion with the tier-1 price series.
  util::Rng rng(10);
  const auto trace = cloudnet::wikipedia_like(10, rng);
  InstanceConfig cfg;
  cfg.num_tier2 = 1;
  cfg.num_tier1 = 1;
  cfg.sla_k = 1;
  cfg.reconfig_weight = 30.0;
  cfg.seed = 10;
  cfg.model_tier1 = true;
  const Instance inst = cloudnet::build_instance(cfg, trace);

  RoaOptions options;
  options.eps = options.eps_prime = 0.05;
  options.ipm.tol = 1e-9;
  const RoaRun run = run_roa(inst, options);

  SingleResourceInstance zsub;
  zsub.capacity = inst.tier1_capacity[0];
  zsub.reconfig = inst.tier1_reconfig[0];
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    zsub.demand.push_back(inst.demand[t][0]);
    zsub.price.push_back(inst.tier1_price[t][0]);
  }
  const auto z_expected = single_roa(zsub, options.eps);
  for (std::size_t t = 0; t < inst.horizon; ++t)
    EXPECT_NEAR(run.trajectory.slots[t].z[0], z_expected[t], 2e-3)
        << "t=" << t;
}

TEST(Tier1, RepairCoversShortfallInZ) {
  const Instance inst = make_instance(3, 10.0, 11);
  Allocation a = Allocation::zeros(inst.num_edges());
  a.x = inst.even_split(0);
  a.y = a.x;  // z missing -> under-covered
  bool repaired = false;
  const Allocation out = repair_allocation(inst, 0, a, {}, &repaired);
  EXPECT_TRUE(repaired);
  EXPECT_LE(slot_violation(inst, 0, out), 1e-6);
}

TEST(Tier1, PredictiveControllersFeasible) {
  const Instance inst = make_instance(6, 100.0, 12);
  ControlOptions opts;
  opts.window = 2;
  opts.prediction = {0.10, 77};
  for (const ControlRun& run : {run_fhc(inst, opts), run_rhc(inst, opts),
                                run_rfhc(inst, opts), run_rrhc(inst, opts)}) {
    EXPECT_TRUE(is_feasible(inst, run.trajectory, 1e-5)) << run.algorithm;
  }
}

TEST(Tier1, Theorem4HoldsWithF1) {
  const Instance inst = make_instance(8, 150.0, 13);
  ControlOptions opts;
  opts.window = 3;
  const RoaRun online = run_roa(inst, opts.roa);
  const ControlRun rfhc = run_rfhc(inst, opts);
  const ControlRun rrhc = run_rrhc(inst, opts);
  const double tol = 1e-3 * online.cost.total();
  EXPECT_LE(rfhc.cost.total(), online.cost.total() + tol);
  EXPECT_LE(rrhc.cost.total(), online.cost.total() + tol);
}

TEST(Tier1, LcpMFeasibleWithZ) {
  const Instance inst = make_instance(6, 50.0, 14);
  const auto run = baselines::run_lcp_m(inst);
  EXPECT_TRUE(is_feasible(inst, run.trajectory, 1e-5));
}

TEST(Tier1, DisabledRegressionZStaysZero) {
  // With model_tier1 = false everything behaves exactly as the reduced P1:
  // z never becomes nonzero anywhere in the pipeline.
  const Instance inst = make_instance(5, 50.0, 15, /*with_tier1=*/false);
  const RoaRun roa = run_roa(inst);
  const auto greedy = baselines::run_one_shot_sequence(inst);
  for (const auto& traj : {roa.trajectory, greedy.trajectory})
    for (const auto& slot : traj.slots)
      for (double v : slot.z) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace sora::core
