// Differential oracle: one instance, every backend, asserted agreement.
//
// Two comparison planes:
//   * differential_roa — the regularized online chain through the dense
//     reference IPM, the sparse CSR workspace cold-started, and the sparse
//     workspace warm-started. All three must produce the same trajectory to
//     tolerance (they solve the same strictly convex subproblems), and each
//     trajectory must pass the P1 invariant checker.
//   * differential_lp — the P1 window LP through the simplex and PDHG
//     backends (solver::cross_check): objective agreement plus primal
//     feasibility of both answers.
//
// On any mismatch the offending instance is dumped to a sora-repro file
// (see repro.hpp) and the dump path is embedded in the report, so a CI
// failure ships its own reproducer.
#pragma once

#include <string>
#include <vector>

#include "cloudnet/instance.hpp"
#include "solver/lp_solve.hpp"

namespace sora::testing {

struct DiffOptions {
  // Inner-solver accuracy for the ROA backends. Tight, so all backends
  // converge to the unique optimum of each strictly convex subproblem.
  double ipm_tol = 1e-9;
  // Max per-edge |x_a - x_b| (and |y_a - y_b|) across backend pairs.
  double primal_tol = 2e-4;
  // Relative total-cost agreement across backends.
  double cost_tol = 1e-4;
  // Relative simplex-vs-PDHG objective gap on the window LP.
  double lp_gap_tol = 1e-5;
  // Max constraint violation allowed for each LP backend's primal answer.
  double lp_feas_tol = 1e-5;
  bool dump_on_failure = true;

  // Also run the block-decomposed backend (decomposition mode kForce) and
  // compare it against the dense reference. The per-edge x split inside an
  // SLA group is not unique on the optimal face (price ties), so the
  // decomposed comparison uses total cost, the per-cloud aggregates X_i the
  // objective actually sees, and the per-edge y (strictly convex per edge).
  // ADMM stops at consensus-residual tolerances far looser than ipm_tol,
  // hence the separate tolerances.
  bool include_decomposed = false;
  double decomposed_primal_tol = 5e-2;
  double decomposed_cost_tol = 5e-3;
};

struct DiffMismatch {
  std::string what;        // "dense-vs-sparse-warm x", "lp objective gap", ...
  double magnitude = 0.0;  // observed disagreement
  std::string repro_path;  // "" when dumping is disabled or failed
};

struct DiffReport {
  std::vector<DiffMismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
  std::string summary() const;
};

/// Compare the three ROA backends (dense / sparse-cold / sparse-warm) on
/// `inst` and invariant-check each trajectory. `label` keys the repro dump.
DiffReport differential_roa(const cloudnet::Instance& inst,
                            const std::string& label,
                            const DiffOptions& options = {});

/// Cross-check the P1 LP over [0, min(2, T)) between simplex and PDHG.
DiffReport differential_lp(const cloudnet::Instance& inst,
                           const std::string& label,
                           const DiffOptions& options = {});

}  // namespace sora::testing
