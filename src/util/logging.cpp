#include "util/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace sora::util {
namespace {

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level = [] {
    const char* env = std::getenv("SORA_LOG");
    return env != nullptr ? parse_log_level(env) : LogLevel::kInfo;
  }();
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace sora::util
