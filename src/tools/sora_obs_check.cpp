// sora_obs_check — validate metrics/trace JSON emitted by the obs layer.
// Used by CI to gate the telemetry artifacts and handy for humans too.
//
//   sora_obs_check --metrics m.json [--require sora_ipm_newton_steps ...]
//   sora_obs_check --trace t.json [--min-events N]
//
// Exits 0 when every given file parses and every --require'd metric exists
// with at least one recorded observation; prints what failed otherwise.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "sora_obs_check: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

using sora::obs::json::Value;

// A metric "has data" when a counter/gauge carries a value field or a
// histogram has a positive count.
bool metric_has_data(const Value& metric) {
  if (const Value* count = metric.find("count"))
    return count->as_number() > 0.0;
  return metric.find("value") != nullptr;
}

int check_metrics(const std::string& path,
                  const std::vector<std::string>& required) {
  const Value doc = sora::obs::json::parse(read_file(path));
  const Value& metrics = doc.at("metrics");
  int failures = 0;
  for (const std::string& name : required) {
    bool found = false;
    for (const Value& metric : metrics.as_array()) {
      if (metric.at("name").as_string() != name) continue;
      found = true;
      if (!metric_has_data(metric)) {
        std::fprintf(stderr, "FAIL: metric %s present but empty\n",
                     name.c_str());
        ++failures;
      }
      break;
    }
    if (!found) {
      std::fprintf(stderr, "FAIL: metric %s missing from %s\n", name.c_str(),
                   path.c_str());
      ++failures;
    }
  }
  std::printf("metrics %s: %zu metrics, %zu required present\n", path.c_str(),
              metrics.as_array().size(), required.size());
  return failures;
}

int check_trace(const std::string& path, double min_events) {
  const Value doc = sora::obs::json::parse(read_file(path));
  const Value& events = doc.at("traceEvents");
  int failures = 0;
  for (const Value& ev : events.as_array()) {
    // Chrome trace-event complete events: these fields are what Perfetto
    // needs to reconstruct the span tree.
    if (!ev.find("name") || !ev.find("ph") || !ev.find("ts") ||
        !ev.find("dur") || !ev.find("tid")) {
      std::fprintf(stderr, "FAIL: trace event missing a required field\n");
      ++failures;
      break;
    }
  }
  const std::size_t n = events.as_array().size();
  if (static_cast<double>(n) < min_events) {
    std::fprintf(stderr, "FAIL: trace has %zu events, expected >= %g\n", n,
                 min_events);
    ++failures;
  }
  std::printf("trace %s: %zu events\n", path.c_str(), n);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  std::vector<std::string> required;
  double min_events = 1.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sora_obs_check: %s needs a value\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--require") {
      required.push_back(next());
    } else if (arg == "--min-events") {
      min_events = std::strtod(next().c_str(), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: sora_obs_check [--metrics FILE [--require NAME]...]"
                   " [--trace FILE [--min-events N]]\n");
      return 2;
    }
  }
  if (metrics_path.empty() && trace_path.empty()) {
    std::fprintf(stderr, "sora_obs_check: nothing to check\n");
    return 2;
  }

  int failures = 0;
  try {
    if (!metrics_path.empty()) failures += check_metrics(metrics_path, required);
    if (!trace_path.empty()) failures += check_trace(trace_path, min_events);
  } catch (const sora::util::CheckError& e) {
    std::fprintf(stderr, "FAIL: %s\n", e.what());
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
