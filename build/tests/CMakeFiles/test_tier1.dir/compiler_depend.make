# Empty compiler generated dependencies file for test_tier1.
# This may be replaced when dependencies are built.
