#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace sora::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  SORA_CHECK_MSG(cells.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_numeric_row(const std::string& label,
                                   const std::vector<double>& values,
                                   const char* f) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(fmt(v, f));
  add_row(std::move(cells));
}

std::string TablePrinter::fmt(double v, const char* f) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  auto print_rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t k = 0; k < widths[c] + 2; ++k) os << '-';
      os << '+';
    }
    os << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace sora::util
