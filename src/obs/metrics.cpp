#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>

#include "util/check.hpp"

namespace sora::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
void auto_configure();  // obs.cpp: env contract + atexit export
}  // namespace detail

namespace {
// Any binary using metrics links this TU; run the env contract at load.
[[maybe_unused]] const bool g_auto_configured = (detail::auto_configure(), true);
}  // namespace

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  SORA_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  SORA_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                     std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                         bounds_.end(),
                 "histogram bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t k = 0; k <= bounds_.size(); ++k) counts_[k] = 0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t k = 0; k <= bounds_.size(); ++k)
    out[k] = counts_[k].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t k = 0; k <= bounds_.size(); ++k)
    counts_[k].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  SORA_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds(count);
  double b = start;
  for (std::size_t k = 0; k < count; ++k, b *= factor) bounds[k] = b;
  return bounds;
}

std::vector<double> linear_buckets(double start, double width,
                                   std::size_t count) {
  SORA_CHECK(width > 0.0 && count > 0);
  std::vector<double> bounds(count);
  for (std::size_t k = 0; k < count; ++k)
    bounds[k] = start + width * static_cast<double>(k);
  return bounds;
}

MetricsFormat parse_metrics_format(const std::string& name) {
  if (name == "text" || name == "prom" || name == "prometheus")
    return MetricsFormat::kText;
  return MetricsFormat::kJson;
}

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

// %g keeps integers short and doubles readable; +Inf never reaches here.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Entry {
  std::string name;
  std::string unit;
  std::string help;
  Kind kind;
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
};

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  // Deques give stable addresses under growth; instruments are never erased.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::vector<Entry> entries;  // registration order
  std::map<std::string, std::size_t> index;
  std::vector<std::function<std::string()>> text_extensions;

  Entry* find(const std::string& name, Kind kind) {
    auto it = index.find(name);
    if (it == index.end()) return nullptr;
    Entry& e = entries[it->second];
    SORA_CHECK_MSG(e.kind == kind,
                   "metric '" + name + "' already registered as " +
                       kind_name(e.kind) + ", requested " + kind_name(kind));
    return &e;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry* registry = new Registry;  // leaked: outlives atexit hooks
  return *registry;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (Entry* e = im.find(name, Kind::kCounter)) return *e->counter;
  im.counters.emplace_back();
  Entry e{name, "", help, Kind::kCounter, &im.counters.back(), nullptr,
          nullptr};
  im.index[name] = im.entries.size();
  im.entries.push_back(std::move(e));
  return im.counters.back();
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (Entry* e = im.find(name, Kind::kGauge)) return *e->gauge;
  im.gauges.emplace_back();
  Entry e{name, "", help, Kind::kGauge, nullptr, &im.gauges.back(), nullptr};
  im.index[name] = im.entries.size();
  im.entries.push_back(std::move(e));
  return im.gauges.back();
}

Histogram& Registry::histogram(const std::string& name, const std::string& unit,
                               const std::string& help,
                               std::vector<double> bounds) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  if (Entry* e = im.find(name, Kind::kHistogram)) return *e->histogram;
  im.histograms.emplace_back(std::move(bounds));
  Entry e{name, unit, help, Kind::kHistogram, nullptr, nullptr,
          &im.histograms.back()};
  im.index[name] = im.entries.size();
  im.entries.push_back(std::move(e));
  return im.histograms.back();
}

RegistrySnapshot Registry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  RegistrySnapshot snap;
  for (const Entry& e : im.entries) {
    switch (e.kind) {
      case Kind::kCounter:
        snap.counters[e.name] = e.counter->value();
        break;
      case Kind::kGauge:
        snap.gauges[e.name] = e.gauge->value();
        break;
      case Kind::kHistogram: {
        HistogramSnapshot h;
        h.bounds = e.histogram->bounds();
        h.counts = e.histogram->bucket_counts();
        h.count = e.histogram->count();
        h.sum = e.histogram->sum();
        snap.histograms[e.name] = std::move(h);
        break;
      }
    }
  }
  return snap;
}

void Registry::add_text_extension(std::function<std::string()> fn) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  im.text_extensions.push_back(std::move(fn));
}

std::string Registry::render_text() const {
  Impl& im = impl();
  std::unique_lock<std::mutex> lock(im.mu);
  std::ostringstream os;
  for (const Entry& e : im.entries) {
    if (!e.help.empty()) os << "# HELP " << e.name << " " << e.help << "\n";
    os << "# TYPE " << e.name << " " << kind_name(e.kind) << "\n";
    switch (e.kind) {
      case Kind::kCounter:
        os << e.name << " " << e.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << e.name << " " << fmt_double(e.gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        const auto& bounds = e.histogram->bounds();
        const auto counts = e.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t k = 0; k < bounds.size(); ++k) {
          cumulative += counts[k];
          os << e.name << "_bucket{le=\"" << fmt_double(bounds[k]) << "\"} "
             << cumulative << "\n";
        }
        os << e.name << "_bucket{le=\"+Inf\"} " << e.histogram->count()
           << "\n";
        os << e.name << "_sum " << fmt_double(e.histogram->sum()) << "\n";
        os << e.name << "_count " << e.histogram->count() << "\n";
        break;
      }
    }
  }
  // Copy the extension list, then run the producers unlocked: extensions may
  // read the registry (e.g. render a digest that also registers metrics).
  const auto extensions = im.text_extensions;
  lock.unlock();
  for (const auto& fn : extensions) os << fn();
  return os.str();
}

std::string Registry::render_json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  std::ostringstream os;
  os << "{\"metrics\":[";
  bool first = true;
  for (const Entry& e : im.entries) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"type\":\""
       << kind_name(e.kind) << "\"";
    if (!e.unit.empty()) os << ",\"unit\":\"" << json_escape(e.unit) << "\"";
    if (!e.help.empty()) os << ",\"help\":\"" << json_escape(e.help) << "\"";
    switch (e.kind) {
      case Kind::kCounter:
        os << ",\"value\":" << e.counter->value();
        break;
      case Kind::kGauge:
        os << ",\"value\":" << fmt_double(e.gauge->value());
        break;
      case Kind::kHistogram: {
        const auto& bounds = e.histogram->bounds();
        const auto counts = e.histogram->bucket_counts();
        os << ",\"buckets\":[";
        for (std::size_t k = 0; k < bounds.size(); ++k) {
          if (k != 0) os << ",";
          os << "{\"le\":" << fmt_double(bounds[k]) << ",\"count\":"
             << counts[k] << "}";
        }
        os << ",{\"le\":\"+Inf\",\"count\":" << counts[bounds.size()] << "}]";
        os << ",\"sum\":" << fmt_double(e.histogram->sum());
        os << ",\"count\":" << e.histogram->count();
        break;
      }
    }
    os << "}";
  }
  os << "]}\n";
  return os.str();
}

void Registry::write_file(const std::string& path, MetricsFormat format) const {
  const std::string body =
      format == MetricsFormat::kText ? render_text() : render_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  SORA_CHECK_MSG(f != nullptr, "cannot open metrics file " + path);
  const std::size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  SORA_CHECK_MSG(written == body.size(), "short write to " + path);
}

void Registry::reset_all() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lock(im.mu);
  for (Counter& c : im.counters) c.reset();
  for (Gauge& g : im.gauges) g.reset();
  for (Histogram& h : im.histograms) h.reset();
}

}  // namespace sora::obs
