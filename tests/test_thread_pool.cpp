// util::ThreadPool under load: every submitted task runs exactly once,
// parallel_for covers its range and rethrows the first body exception, and
// destruction drains outstanding work instead of dropping it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace sora::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int i = 0; i < kTasks; ++i)
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 50 * (round + 1));
  }
}

TEST(ThreadPool, SingleThreadedPoolPreservesSubmissionOrder) {
  // With one worker the shared queue is FIFO, so results arrive in
  // submission order — the ordering contract sweep harnesses rely on when
  // SORA_THREADS=1 is used to get deterministic logs.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) pool.submit([&order, i] { order.push_back(i); });
  pool.wait_idle();
  std::vector<int> expected(64);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    // No wait_idle(): the destructor must finish the backlog, not drop it.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeWithGrains) {
  for (const std::size_t grain : {1u, 3u, 16u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    parallel_for(
        0, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); },
        grain);
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  std::atomic<int> completed{0};
  try {
    parallel_for(0, 64, [&completed](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom at 13");
      completed.fetch_add(1);
    });
    FAIL() << "expected the body exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 13");
  }
  // The pool survives the exception and keeps serving work.
  std::atomic<int> after{0};
  parallel_for(0, 8, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, ParallelForCancelsQueuedChunksAfterError) {
  // A poisoned batch must return promptly: once the first chunk throws,
  // queued chunks drain without running their bodies instead of executing
  // the full batch before the rethrow. Chunk 0 is dequeued first (FIFO), so
  // the error is captured while the bulk of the batch is still queued; only
  // the handful of chunks already in flight may still run.
  constexpr std::size_t kTotal = 2048;
  std::atomic<std::size_t> executed{0};
  try {
    parallel_for(
        0, kTotal,
        [&executed](std::size_t i) {
          if (i == 0) throw std::runtime_error("poisoned batch");
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          executed.fetch_add(1);
        },
        /*grain=*/1);
    FAIL() << "expected the poisoned chunk to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "poisoned batch");
  }
  EXPECT_LT(executed.load(), kTotal / 2)
      << "cancellation should skip most queued chunks";
  // The pool is healthy afterwards.
  std::atomic<std::size_t> after{0};
  parallel_for(0, 16, [&after](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 16u);
}

TEST(ThreadPool, ManyWaitersUnderLoad) {
  // Hammer submit/wait_idle from several client threads at once: no lost
  // wakeups, no task left behind.
  ThreadPool pool(4);
  std::atomic<int> total{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c)
    clients.emplace_back([&pool, &total] {
      for (int i = 0; i < 50; ++i) pool.submit([&total] { total.fetch_add(1); });
      pool.wait_idle();
    });
  for (auto& t : clients) t.join();
  pool.wait_idle();
  EXPECT_EQ(total.load(), 4 * 50);
}

// ---------------------------------------------------------------------------
// Guided scheduling (ForSchedule::kGuided) — the ADMM block fan-out path.

TEST(ThreadPool, GuidedCoversRangeExactlyOnce) {
  for (const std::size_t grain : {1u, 3u, 16u, 1000u}) {
    std::vector<std::atomic<int>> hits(509);
    parallel_for(
        0, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); },
        grain, ForSchedule::kGuided);
    for (std::size_t i = 0; i < hits.size(); ++i)
      EXPECT_EQ(hits[i].load(), 1) << "grain " << grain << " index " << i;
  }
}

TEST(ThreadPool, GuidedEmptyAndSingletonRanges) {
  std::atomic<int> touched{0};
  parallel_for(
      7, 7, [&touched](std::size_t) { touched.fetch_add(1); }, 1,
      ForSchedule::kGuided);
  EXPECT_EQ(touched.load(), 0);
  parallel_for(
      7, 8, [&touched](std::size_t i) { touched.fetch_add(i == 7 ? 1 : 100); },
      1, ForSchedule::kGuided);
  EXPECT_EQ(touched.load(), 1);
}

TEST(ThreadPool, GuidedHeterogeneousCostsCoverEverything) {
  // Wildly uneven per-index costs (the motivating ADMM case: one giant SLA
  // group among many tiny ones). Guided chunking must still run every index
  // exactly once and return.
  std::vector<std::atomic<int>> hits(128);
  parallel_for(
      0, hits.size(),
      [&hits](std::size_t i) {
        if (i % 31 == 0)
          std::this_thread::sleep_for(std::chrono::microseconds(500));
        hits[i].fetch_add(1);
      },
      1, ForSchedule::kGuided);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, GuidedPropagatesException) {
  std::atomic<int> completed{0};
  try {
    parallel_for(
        0, 256,
        [&completed](std::size_t i) {
          if (i == 77) throw std::runtime_error("guided boom");
          completed.fetch_add(1);
        },
        1, ForSchedule::kGuided);
    FAIL() << "expected the body exception to be rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "guided boom");
  }
  std::atomic<int> after{0};
  parallel_for(
      0, 8, [&after](std::size_t) { after.fetch_add(1); }, 1,
      ForSchedule::kGuided);
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, GuidedNestsInsideWorkerTasks) {
  // A guided loop issued from inside a pool worker (ADMM fan-out inside an
  // outer pipeline task) must not deadlock: the caller participates via the
  // shared cursor instead of blocking on its own pool.
  std::atomic<int> inner{0};
  TaskGroup group;
  group.run([&inner] {
    parallel_for(
        0, 64, [&inner](std::size_t) { inner.fetch_add(1); }, 1,
        ForSchedule::kGuided);
  });
  group.wait();
  EXPECT_EQ(inner.load(), 64);
}

// ---------------------------------------------------------------------------
// TaskGroup — the waitable nested-task primitive under the fan-out.

TEST(TaskGroup, RunsAndIsReusableAfterWait) {
  TaskGroup group;
  std::atomic<int> total{0};
  for (int i = 0; i < 32; ++i) group.run([&total] { total.fetch_add(1); });
  group.wait();
  EXPECT_EQ(total.load(), 32);
  for (int i = 0; i < 16; ++i) group.run([&total] { total.fetch_add(1); });
  group.wait();
  EXPECT_EQ(total.load(), 48);
}

TEST(TaskGroup, WaitRethrowsFirstError) {
  TaskGroup group;
  std::atomic<int> survived{0};
  for (int i = 0; i < 16; ++i)
    group.run([&survived, i] {
      if (i == 5) throw std::runtime_error("group boom");
      survived.fetch_add(1);
    });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // The group is clean after the rethrow and usable again.
  group.run([&survived] { survived.fetch_add(1); });
  group.wait();
  EXPECT_EQ(survived.load(), 16);
}

TEST(TaskGroup, DestructorWaitsWithoutThrowing) {
  std::atomic<int> done{0};
  {
    TaskGroup group;
    for (int i = 0; i < 24; ++i)
      group.run([&done, i] {
        if (i == 3) throw std::runtime_error("swallowed at destruction");
        done.fetch_add(1);
      });
    // No wait(): the destructor must drain and swallow the error.
  }
  EXPECT_EQ(done.load(), 23);
}

}  // namespace
}  // namespace sora::util
