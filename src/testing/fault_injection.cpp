#include "testing/fault_injection.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sora::testing {
namespace {
core::FaultKind rotate_kind(std::size_t index) {
  switch (index % 3) {
    case 0:
      return core::FaultKind::kIterationLimit;
    case 1:
      return core::FaultKind::kNumericalError;
    default:
      return core::FaultKind::kNanPoison;
  }
}

// Events for one region, from its own child stream only: a pure function of
// (master seed, region), so the fan-out order across pool workers cannot
// change the schedule. Events never overlap within a region.
std::vector<OutageEvent> region_events(std::size_t region, util::Rng rng,
                                       const RegionalOutagePlan& plan) {
  std::vector<OutageEvent> events;
  const double p = plan.events_per_100_slots / 100.0;
  for (std::size_t t = 0; t < plan.max_slots; ++t) {
    if (rng.uniform() >= p) continue;
    const double mean = std::max(1.0, plan.mean_duration);
    std::size_t duration =
        1 + static_cast<std::size_t>(rng.exponential(1.0 / mean));
    duration = std::min<std::size_t>(
        {duration, plan.max_duration, plan.max_slots - t});
    events.push_back({region, t, duration});
    t += duration;  // next draw after the outage clears
  }
  return events;
}
}  // namespace

void FaultInjector::install_hook() {
  // The hook only captures `this`; the RAII contract (injector outlives any
  // run it is driving) makes that safe.
  core::set_fault_hook([this](std::size_t slot, std::size_t attempt) {
    const core::FaultKind k = kind(slot);
    if (k == core::FaultKind::kNone || attempt >= plan_.forced_attempts)
      return core::FaultKind::kNone;
    injections_.fetch_add(1, std::memory_order_relaxed);
    return k;
  });
}

FaultInjector::FaultInjector(const FaultPlan& plan) : plan_(plan) {
  schedule_.assign(plan_.max_slots, core::FaultKind::kNone);
  util::Rng rng(plan_.seed);
  std::size_t scheduled = 0;
  for (std::size_t t = 0; t < plan_.max_slots; ++t) {
    if (rng.uniform() >= plan_.fault_rate) continue;
    schedule_[t] = plan_.mix_kinds ? rotate_kind(scheduled) : plan_.kind;
    ++scheduled;
  }
  install_hook();
}

FaultInjector::FaultInjector(const cloudnet::Instance& inst,
                             const RegionalOutagePlan& plan,
                             util::ThreadPool& pool) {
  SORA_CHECK(inst.num_tier1() > 0);
  plan_.fault_rate = 0.0;  // unused by the correlated model
  plan_.seed = plan.seed;
  plan_.forced_attempts = plan.forced_attempts;
  plan_.kind = plan.kind;
  plan_.mix_kinds = plan.mix_kinds;
  plan_.max_slots = plan.max_slots;

  num_tier2_ = inst.num_tier2();
  sla_sets_.resize(inst.num_tier1());
  for (std::size_t j = 0; j < inst.num_tier1(); ++j)
    for (const std::size_t e : inst.edges_of_tier1[j])
      sla_sets_[j].push_back(inst.edges[e].tier2);

  // Per-region event streams, fanned out on the pool. Each region writes
  // only its own vector and draws only from child(region), so the result is
  // identical for any worker count (asserted by the property suite).
  const util::Rng master(plan.seed);
  std::vector<std::vector<OutageEvent>> per_region(inst.num_tier1());
  util::TaskGroup group(pool);
  for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
    group.run([&, j] {
      per_region[j] = region_events(j, master.child(j), plan);
    });
  }
  group.wait();

  // Serial merge in region order: slot -> kind and slot -> dark clouds.
  schedule_.assign(plan.max_slots, core::FaultKind::kNone);
  down_.assign(plan.max_slots, {});
  for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
    for (const OutageEvent& ev : per_region[j]) {
      events_.push_back(ev);
      for (std::size_t t = ev.start; t < ev.start + ev.duration; ++t) {
        // Kind keyed on the slot index, not the merge order, so overlapping
        // events from different regions cannot reorder the schedule.
        schedule_[t] = plan.mix_kinds ? rotate_kind(t) : plan.kind;
        if (down_[t].empty()) down_[t].assign(num_tier2_, 0);
        for (const std::size_t i : sla_sets_[j]) down_[t][i] = 1;
      }
    }
  }
  install_hook();
}

FaultInjector::~FaultInjector() { core::set_fault_hook({}); }

bool FaultInjector::faulted(std::size_t slot) const {
  return kind(slot) != core::FaultKind::kNone;
}

core::FaultKind FaultInjector::kind(std::size_t slot) const {
  if (slot >= schedule_.size()) return core::FaultKind::kNone;
  return schedule_[slot];
}

std::vector<std::size_t> FaultInjector::faulted_slots() const {
  std::vector<std::size_t> slots;
  for (std::size_t t = 0; t < schedule_.size(); ++t)
    if (schedule_[t] != core::FaultKind::kNone) slots.push_back(t);
  return slots;
}

std::size_t FaultInjector::outage_slot_count() const {
  std::size_t count = 0;
  for (const auto& d : down_)
    if (!d.empty()) ++count;
  return count;
}

std::vector<char> FaultInjector::clouds_down(std::size_t slot) const {
  if (slot >= down_.size()) return {};
  return down_[slot];
}

std::vector<std::size_t> FaultInjector::dark_sites(std::size_t slot) const {
  std::vector<std::size_t> sites;
  if (slot >= down_.size() || down_[slot].empty()) return sites;
  const std::vector<char>& down = down_[slot];
  for (std::size_t j = 0; j < sla_sets_.size(); ++j) {
    if (sla_sets_[j].empty()) continue;
    bool all_down = true;
    for (const std::size_t i : sla_sets_[j])
      if (!down[i]) {
        all_down = false;
        break;
      }
    if (all_down) sites.push_back(j);
  }
  return sites;
}

}  // namespace sora::testing
