file(REMOVE_RECURSE
  "libsora_linalg.a"
)
