#include "cloudnet/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace sora::cloudnet {

double WorkloadTrace::peak() const {
  double p = 0.0;
  for (double v : demand) p = std::max(p, v);
  return p;
}

double WorkloadTrace::mean() const {
  if (demand.empty()) return 0.0;
  double s = 0.0;
  for (double v : demand) s += v;
  return s / static_cast<double>(demand.size());
}

void normalize_peak(WorkloadTrace& trace, double new_peak) {
  const double p = trace.peak();
  SORA_CHECK_MSG(p > 0.0, "cannot normalize an all-zero trace");
  const double f = new_peak / p;
  for (double& v : trace.demand) v *= f;
}

namespace {

std::vector<double> diurnal_base(std::size_t hours, util::Rng& rng,
                                 const DiurnalParams& p) {
  std::vector<double> series(hours);
  double ar = 0.0;
  const double two_pi = 2.0 * std::numbers::pi;
  for (std::size_t t = 0; t < hours; ++t) {
    const double daily =
        std::cos(two_pi * (static_cast<double>(t) - p.peak_hour) / 24.0);
    const double weekly = std::cos(two_pi * static_cast<double>(t) / 168.0);
    ar = p.noise_rho * ar + rng.normal(0.0, p.noise_sd);
    double v = p.base *
               (1.0 + p.daily_amplitude * daily + p.weekly_amplitude * weekly +
                ar);
    series[t] = std::max(v, 0.05 * p.base);  // demand never quite vanishes
  }
  return series;
}

}  // namespace

WorkloadTrace wikipedia_like(std::size_t hours, util::Rng& rng,
                             const DiurnalParams& params) {
  WorkloadTrace trace;
  trace.name = "wikipedia-like";
  trace.demand = diurnal_base(hours, rng, params);
  normalize_peak(trace);
  return trace;
}

WorkloadTrace worldcup_like(std::size_t hours, util::Rng& rng,
                            const DiurnalParams& diurnal,
                            const FlashCrowdParams& flash) {
  WorkloadTrace trace;
  trace.name = "worldcup-like";
  trace.demand = diurnal_base(hours, rng, diurnal);

  // Poisson-ish spike arrivals: each hour starts a flash crowd with
  // probability events/100. The multiplier attacks within one hour and
  // decays exponentially.
  const double p_event = flash.events_per_100h / 100.0;
  std::vector<double> multiplier(hours, 1.0);
  for (std::size_t t = 0; t < hours; ++t) {
    if (rng.uniform() >= p_event) continue;
    const double amp = std::min(
        flash.max_multiplier,
        1.0 + flash.pareto_scale *
                  (rng.pareto(flash.pareto_alpha, 1.0) - 1.0 + 0.5));
    for (std::size_t u = t; u < hours; ++u) {
      const double age = static_cast<double>(u - t);
      const double m = 1.0 + (amp - 1.0) * std::exp(-age / flash.decay_hours);
      multiplier[u] = std::max(multiplier[u], m);
      if (m < 1.02) break;
    }
  }
  for (std::size_t t = 0; t < hours; ++t) trace.demand[t] *= multiplier[t];
  normalize_peak(trace);
  return trace;
}

WorkloadTrace v_shape(double high, double low, std::size_t down_hours,
                      std::size_t up_hours) {
  SORA_CHECK(high > low && low > 0.0);
  SORA_CHECK(down_hours >= 1 && up_hours >= 1);
  WorkloadTrace trace;
  trace.name = "v-shape";
  trace.demand.reserve(down_hours + up_hours + 1);
  for (std::size_t t = 0; t <= down_hours; ++t) {
    const double f = static_cast<double>(t) / static_cast<double>(down_hours);
    trace.demand.push_back(high + (low - high) * f);
  }
  for (std::size_t t = 1; t <= up_hours; ++t) {
    const double f = static_cast<double>(t) / static_cast<double>(up_hours);
    trace.demand.push_back(low + (high - low) * f);
  }
  return trace;
}

WorkloadTrace step_trace(double high, double low, std::size_t high_hours,
                         std::size_t total_hours) {
  SORA_CHECK(high > 0.0 && low > 0.0 && high_hours <= total_hours);
  WorkloadTrace trace;
  trace.name = "step";
  trace.demand.assign(total_hours, low);
  for (std::size_t t = 0; t < high_hours; ++t) trace.demand[t] = high;
  return trace;
}

WorkloadTrace sawtooth_trace(double high, double low, std::size_t period,
                             std::size_t total_hours) {
  SORA_CHECK(high > low && low > 0.0 && period >= 2);
  WorkloadTrace trace;
  trace.name = "sawtooth";
  trace.demand.resize(total_hours);
  for (std::size_t t = 0; t < total_hours; ++t) {
    const std::size_t phase = t % period;
    const std::size_t half = period / 2;
    const double f = phase < half
                         ? static_cast<double>(phase) / half
                         : static_cast<double>(period - phase) /
                               (period - half);
    trace.demand[t] = low + (high - low) * (1.0 - f);
  }
  return trace;
}

TraceStats trace_stats(const WorkloadTrace& trace) {
  TraceStats s;
  if (trace.demand.empty()) return s;
  s.peak = trace.peak();
  s.mean = trace.mean();
  auto sorted = trace.demand;
  std::sort(sorted.begin(), sorted.end());
  s.p95 = sorted[static_cast<std::size_t>(0.95 * (sorted.size() - 1))];
  s.burstiness = s.mean > 0.0 ? s.peak / s.mean : 0.0;

  std::size_t ramp = 0;
  for (std::size_t t = 1; t < trace.hours(); ++t) {
    ramp = trace.demand[t] < trace.demand[t - 1] ? ramp + 1 : 0;
    s.max_ramp_down = std::max(s.max_ramp_down, ramp);
  }

  if (trace.hours() > 24) {
    double num = 0.0, den = 0.0;
    for (std::size_t t = 0; t + 24 < trace.hours(); ++t)
      num += (trace.demand[t] - s.mean) * (trace.demand[t + 24] - s.mean);
    for (std::size_t t = 0; t < trace.hours(); ++t)
      den += (trace.demand[t] - s.mean) * (trace.demand[t] - s.mean);
    s.lag24_autocorr = den > 0.0 ? num / den : 0.0;
  }
  return s;
}

WorkloadTrace load_csv_trace(const std::string& path) {
  const auto table = util::read_csv_file(path);
  SORA_CHECK_MSG(table.has_value(), "cannot open trace file " + path);
  WorkloadTrace trace;
  trace.name = path;
  for (const auto& row : table->rows) {
    SORA_CHECK_MSG(!row.empty(), "empty CSV row in " + path);
    // Single column: demand; two columns: hour,demand (take the last cell).
    trace.demand.push_back(std::strtod(row.back().c_str(), nullptr));
  }
  SORA_CHECK_MSG(!trace.demand.empty(), "no rows in trace file " + path);
  normalize_peak(trace);
  return trace;
}

}  // namespace sora::cloudnet
