// The single-resource specialization of the smoothed online problem
// (paper eq. (4)-(6)):
//
//   min sum_t a_t x_t + b [x_t - x_{t-1}]^+   s.t. lambda_t <= x_t <= C.
//
// This is the analytically tractable core the paper uses for its geometric
// interpretation (Sec. III-C) and worst-case constructions (Lemma 2,
// Theorems 2-3). We provide:
//   * the closed-form ROA recursion (exponential decay),
//   * the greedy (follow-the-workload) policy,
//   * an exact offline optimum (LP),
//   * the Lazy Capacity Provisioning policy (LCP, Lin et al. [12]), and
//   * FHC/RHC on this model (for the worst-case benches).
//
// These closed forms double as oracles for the property tests of the full
// two-tier solver.
#pragma once

#include <cstddef>

#include "linalg/vector_ops.hpp"

namespace sora::core {

struct SingleResourceInstance {
  linalg::Vec demand;  // lambda_t, t = 0..T-1
  linalg::Vec price;   // a_t > 0
  double reconfig = 1.0;  // b > 0
  double capacity = 1.0;  // C >= max_t lambda_t

  std::size_t horizon() const { return demand.size(); }
  void validate() const;  // throws CheckError on malformed data
};

/// Total cost of a feasible plan (x_0- = 0).
double single_total_cost(const SingleResourceInstance& inst,
                         const linalg::Vec& x);

/// Worst constraint violation of a plan (0 when feasible).
double single_violation(const SingleResourceInstance& inst,
                        const linalg::Vec& x);

/// Closed-form ROA: x_t = max(lambda_t, decay_point(x_{t-1})). (Sec. III-C)
linalg::Vec single_roa(const SingleResourceInstance& inst, double eps);

/// Greedy one-shot: follows the workload whenever the operating price is
/// positive (x_t = lambda_t).
linalg::Vec single_greedy(const SingleResourceInstance& inst);

/// Exact offline optimum via LP.
linalg::Vec single_offline(const SingleResourceInstance& inst);

/// Lazy Capacity Provisioning: x_t = max(x^L_t, min(x_{t-1}, x^U_t)), with
/// x^L_t = lambda_t (cheapest instantaneous cover) and x^U_t the optimum of
/// the reverse-reconfiguration one-shot (stay high while a_t < b).
linalg::Vec single_lcp(const SingleResourceInstance& inst);

/// FHC with prediction window w (exact predictions): solves each
/// non-overlapping w-slot block optimally given the previous decision.
linalg::Vec single_fhc(const SingleResourceInstance& inst, std::size_t w);

/// RHC with window w: per-slot receding-horizon solve, applies first slot.
linalg::Vec single_rhc(const SingleResourceInstance& inst, std::size_t w);

/// Theorem 1 specialised: r = 1 + (C + eps) ln(1 + C/eps) (single resource,
/// |I| = 1, no network edges).
double single_theoretical_ratio(const SingleResourceInstance& inst,
                                double eps);

}  // namespace sora::core
