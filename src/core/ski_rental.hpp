// The ski-rental connection (paper Sec. III-D remark).
//
// The single-resource smoothed problem is a continuous ski-rental variant:
// holding one unit of capacity for a slot "rents" at the operating price
// a_t, while ramping capacity up "buys" at the reconfiguration price b. In
// the classic problem (constant rent a), the break-even deterministic
// algorithm (rent until the paid rent equals the purchase price, then buy)
// is 2-competitive. The paper's remark: with TIME-VARYING, unbounded rental
// prices the best deterministic ratio degrades — which hints that the
// capacity-parameterized ratio of Theorem 1 is the right kind of guarantee
// for the cloud setting.
//
// This module provides the classic problem, the break-even algorithm, and
// the adversarial time-varying-price construction demonstrating the remark.
// The break-even rule here is the no-peek accumulation rule (commit to
// renting a slot before its price is charged — a VM must be up before the
// hour's spot price applies); under constant unit rents it achieves
// 2 + 1/buy (exactly 2 at integer buy), while a single price spike makes
// its ratio grow without bound.
#pragma once

#include <cstddef>

#include "linalg/vector_ops.hpp"

namespace sora::core {

struct SkiRentalInstance {
  linalg::Vec rent;      // rental price per slot (classic: all equal)
  double buy = 1.0;      // purchase price
  std::size_t ski_days = 0;  // the adversary stops after this many slots
                             // (ski_days <= rent.size())
};

/// Cost of a policy that buys at the START of slot `buy_slot` (buy_slot ==
/// ski_days means "never buys in time"): rents before, owns afterwards.
double ski_cost(const SkiRentalInstance& inst, std::size_t buy_slot);

/// Offline optimum: min(total rent over the season, buy immediately).
double ski_offline(const SkiRentalInstance& inst);

/// Break-even deterministic rule: buy at the first slot where the
/// accumulated rent would reach the purchase price. Returns the buy slot.
std::size_t ski_break_even_slot(const SkiRentalInstance& inst);

/// Competitive ratio of the break-even rule on this instance.
double ski_break_even_ratio(const SkiRentalInstance& inst);

/// Classic instance: constant rent 1, purchase price `buy`, adversary stops
/// right after the break-even buy (the classic worst case, ratio -> 2).
SkiRentalInstance classic_worst_case(double buy);

/// The paper's variant: rents spike by `spike` at the adversarially chosen
/// slot, making any deterministic break-even-style rule pay ~spike more.
/// Ratio grows with `spike` — unbounded as the price becomes unbounded.
SkiRentalInstance time_varying_worst_case(double buy, double spike);

}  // namespace sora::core
