// Sparse-vs-dense equivalence for the barrier IPM and the P2 solver
// pipeline: the CSR Newton-assembly kernels, the sparse solve_barrier
// overload against the dense reference, the P2Workspace against the dense
// cold-start path (primal, objective, and KKT multipliers), and the
// empty-SLA-group guard in the even-split start.
#include <gtest/gtest.h>

#include <cmath>

#include "cloudnet/instance.hpp"
#include "core/p2_subproblem.hpp"
#include "core/roa.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "solver/ipm.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sora::core {
namespace {

using cloudnet::InstanceConfig;
using cloudnet::WorkloadTrace;
using linalg::Matrix;
using linalg::SparseMatrix;
using linalg::Triplet;

Instance make_instance(std::size_t horizon, double reconfig_weight,
                       std::uint64_t seed, bool model_tier1 = false,
                       std::size_t k = 2) {
  util::Rng rng(seed);
  const WorkloadTrace trace = cloudnet::wikipedia_like(horizon, rng);
  InstanceConfig cfg;
  cfg.num_tier2 = 4;
  cfg.num_tier1 = 6;
  cfg.sla_k = k;
  cfg.reconfig_weight = reconfig_weight;
  cfg.seed = seed;
  cfg.model_tier1 = model_tier1;
  return cloudnet::build_instance(cfg, trace);
}

TEST(SparseKernels, AddAtDAMatchesDense) {
  util::Rng rng(7);
  const std::size_t rows = 25, cols = 12;
  Matrix dense(rows, cols, 0.0);
  std::vector<Triplet> trip;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.uniform() < 0.25) {
        const double v = rng.normal();
        dense(r, c) = v;
        trip.push_back({r, c, v});
      }
  const auto sparse = SparseMatrix::from_triplets(rows, cols, trip);
  Vec w(rows);
  for (auto& v : w) v = rng.uniform(0.1, 3.0);

  Matrix expected(cols, cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t a = 0; a < cols; ++a)
      for (std::size_t b = 0; b < cols; ++b)
        expected(a, b) += w[r] * dense(r, a) * dense(r, b);

  Matrix got(cols, cols, 1.0);  // nonzero seed: add_AtDA accumulates
  for (std::size_t a = 0; a < cols; ++a)
    for (std::size_t b = 0; b < cols; ++b) expected(a, b) += 1.0;
  sparse.add_AtDA(w, got);
  for (std::size_t a = 0; a < cols; ++a)
    for (std::size_t b = 0; b < cols; ++b)
      EXPECT_NEAR(got(a, b), expected(a, b), 1e-10) << a << "," << b;
}

TEST(SparseKernels, FromDenseAndRowView) {
  Matrix dense(2, 3, 0.0);
  dense(0, 0) = 2.0;
  dense(0, 2) = -1.0;
  dense(1, 1) = 4.0;
  const auto m = SparseMatrix::from_dense(dense);
  EXPECT_EQ(m.nonzeros(), 3u);
  const auto r0 = m.row(0);
  ASSERT_EQ(r0.size, 2u);
  EXPECT_EQ(r0.cols[0], 0u);
  EXPECT_DOUBLE_EQ(r0.vals[0], 2.0);
  EXPECT_EQ(r0.cols[1], 2u);
  EXPECT_DOUBLE_EQ(r0.vals[1], -1.0);
  const auto r1 = m.row(1);
  ASSERT_EQ(r1.size, 1u);
  EXPECT_EQ(r1.cols[0], 1u);
  EXPECT_DOUBLE_EQ(r1.vals[0], 4.0);
}

TEST(SparseKernels, MultiplyIntoMatchesAllocatingVariants) {
  util::Rng rng(9);
  Matrix dense(8, 5, 0.0);
  std::vector<Triplet> trip;
  for (std::size_t r = 0; r < 8; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      if (rng.uniform() < 0.5) {
        const double v = rng.normal();
        dense(r, c) = v;
        trip.push_back({r, c, v});
      }
  const auto m = SparseMatrix::from_triplets(8, 5, trip);
  Vec x(5), yx(8, 123.0);
  for (auto& v : x) v = rng.normal();
  m.multiply_into(x, yx);
  const Vec yref = m.multiply(x);
  for (std::size_t r = 0; r < 8; ++r) EXPECT_NEAR(yx[r], yref[r], 1e-14);

  Vec z(8), wz(5, -7.0);
  for (auto& v : z) v = rng.normal();
  m.multiply_transpose_into(z, wz);
  const Vec wref = m.multiply_transpose(z);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_NEAR(wz[c], wref[c], 1e-14);
}

TEST(SparseKernels, PatternKeepsExplicitZerosForPatching) {
  linalg::TripletBuilder b(2, 2);
  b.add_pattern(0, 0, 0.0);  // structural zero — must survive the build
  b.add(1, 1, 3.0);
  auto m = std::move(b).build();
  EXPECT_EQ(m.nonzeros(), 2u);
  Vec y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  // Patch the stored slot and observe the new value take effect.
  m.mutable_values()[m.row_offsets()[0]] = -2.0;
  y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], -2.0);
}

// Entropic objective over a polyhedron, like the paper's regularizer.
class Entropic : public solver::ConvexObjective {
 public:
  Entropic(Vec prev, double eps) : prev_(std::move(prev)), eps_(eps) {}
  double value(const Vec& x) const override {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      v += (x[i] + eps_) * std::log((x[i] + eps_) / (prev_[i] + eps_)) - x[i];
    return v;
  }
  Vec gradient(const Vec& x) const override {
    Vec g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      g[i] = std::log((x[i] + eps_) / (prev_[i] + eps_));
    return g;
  }
  Matrix hessian(const Vec& x) const override {
    Matrix h(x.size(), x.size(), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i) h(i, i) = 1.0 / (x[i] + eps_);
    return h;
  }

 private:
  Vec prev_;
  double eps_;
};

TEST(BarrierIpm, SparseMatchesDenseOverload) {
  util::Rng rng(13);
  const std::size_t n = 6;
  // Box 0 <= x <= 2 plus a few random coupling rows g x <= h.
  Matrix dense(2 * n + 4, n, 0.0);
  Vec h(2 * n + 4, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    dense(i, i) = -1.0;
    h[i] = 0.0;
    dense(n + i, i) = 1.0;
    h[n + i] = 2.0;
  }
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < n; ++c)
      if (rng.uniform() < 0.5) dense(2 * n + r, c) = rng.uniform(0.0, 1.0);
    h[2 * n + r] = rng.uniform(2.0, 4.0);
  }
  const auto sparse = SparseMatrix::from_dense(dense);

  Vec prev(n);
  for (auto& v : prev) v = rng.uniform(0.0, 1.0);
  const Entropic objective(prev, 1e-2);
  const Vec x0(n, 0.5);

  solver::IpmOptions opts;
  opts.tol = 1e-9;
  const auto rd = solver::solve_barrier(objective, dense, h, x0, opts);
  solver::IpmScratch scratch;
  const auto rs =
      solver::solve_barrier(objective, sparse, h, x0, opts, &scratch);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_NEAR(rd.objective, rs.objective, 1e-8);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rd.x[i], rs.x[i], 1e-6);
  ASSERT_EQ(rd.ineq_dual.size(), rs.ineq_dual.size());
  for (std::size_t i = 0; i < rd.ineq_dual.size(); ++i)
    EXPECT_NEAR(rd.ineq_dual[i], rs.ineq_dual[i], 1e-6) << "row " << i;
}

// The P2 pipeline: sparse workspace vs dense reference on randomized
// instances. At ipm.tol = 1e-9 both paths must agree on the primal, the
// objective, and every named multiplier to 1e-6.
void expect_p2_paths_agree(const Instance& inst, std::size_t t,
                           const Allocation& prev) {
  RoaOptions dense_opts;
  dense_opts.use_sparse = false;
  dense_opts.ipm.tol = 1e-9;
  RoaOptions sparse_opts;
  sparse_opts.ipm.tol = 1e-9;

  const InputSeries inputs = InputSeries::truth(inst);
  const P2Solution a = solve_p2(inst, inputs, t, prev, dense_opts);
  const P2Solution b = solve_p2(inst, inputs, t, prev, sparse_opts);

  // Duals of ACTIVE rows are recovered as 1/(t s) at the final certified
  // center; the sparse path's inert padded rows enlarge m, so the two paths
  // certify at slightly different t and the large multipliers agree to
  // relative (not absolute) precision.
  const auto dual_tol = [](double ref) { return 1e-6 + 1e-4 * std::abs(ref); };
  EXPECT_NEAR(a.objective, b.objective, 1e-6);
  for (std::size_t e = 0; e < inst.num_edges(); ++e) {
    EXPECT_NEAR(a.alloc.x[e], b.alloc.x[e], 1e-6) << "x " << e;
    EXPECT_NEAR(a.alloc.y[e], b.alloc.y[e], 1e-6) << "y " << e;
    EXPECT_NEAR(a.alloc.z[e], b.alloc.z[e], 1e-6) << "z " << e;
    EXPECT_NEAR(a.rho[e], b.rho[e], dual_tol(a.rho[e])) << "rho " << e;
    EXPECT_NEAR(a.phi[e], b.phi[e], dual_tol(a.phi[e])) << "phi " << e;
    EXPECT_NEAR(a.theta[e], b.theta[e], dual_tol(a.theta[e])) << "theta " << e;
    EXPECT_NEAR(a.sigma[e], b.sigma[e], dual_tol(a.sigma[e])) << "sigma " << e;
  }
  for (std::size_t j = 0; j < inst.num_tier1(); ++j)
    EXPECT_NEAR(a.gamma[j], b.gamma[j], dual_tol(a.gamma[j])) << "gamma " << j;
  for (std::size_t i = 0; i < inst.num_tier2(); ++i)
    EXPECT_NEAR(a.delta[i], b.delta[i], dual_tol(a.delta[i])) << "delta " << i;
  EXPECT_FALSE(b.timing.warm_started);  // fresh workspace cold-starts
}

TEST(P2Pipeline, SparseMatchesDenseOnRandomInstances) {
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    const Instance inst = make_instance(3, 50.0, seed);
    Allocation prev = Allocation::zeros(inst.num_edges());
    expect_p2_paths_agree(inst, 0, prev);
    // A nonzero previous decision exercises the entropic terms fully.
    const Vec split = inst.even_split(0);
    prev.x = split;
    prev.y = split;
    expect_p2_paths_agree(inst, 1, prev);
  }
}

TEST(P2Pipeline, SparseMatchesDenseWithTier1Term) {
  const Instance inst = make_instance(3, 50.0, 11, /*model_tier1=*/true);
  ASSERT_TRUE(inst.has_tier1());
  Allocation prev = Allocation::zeros(inst.num_edges());
  expect_p2_paths_agree(inst, 0, prev);
  const Vec split = inst.even_split(1);
  prev.x = split;
  prev.y = split;
  prev.z = split;
  expect_p2_paths_agree(inst, 1, prev);
}

TEST(P2Pipeline, WorkspaceWarmStartEngagesAndStaysAccurate) {
  const Instance inst = make_instance(6, 100.0, 21);
  const InputSeries inputs = InputSeries::truth(inst);

  RoaOptions cold;
  cold.warm_start = false;
  RoaOptions warm;

  P2Workspace cold_ws(inst, cold);
  P2Workspace warm_ws(inst, warm);
  Allocation cold_prev = Allocation::zeros(inst.num_edges());
  Allocation warm_prev = Allocation::zeros(inst.num_edges());
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    const P2Solution c = cold_ws.solve(inputs, t, cold_prev);
    const P2Solution w = warm_ws.solve(inputs, t, warm_prev);
    EXPECT_FALSE(c.timing.warm_started);
    if (t > 0) EXPECT_TRUE(w.timing.warm_started) << "t=" << t;
    // Both chains track each other within solver accuracy.
    for (std::size_t e = 0; e < inst.num_edges(); ++e) {
      EXPECT_NEAR(c.alloc.x[e], w.alloc.x[e], 1e-3) << "t=" << t;
      EXPECT_NEAR(c.alloc.y[e], w.alloc.y[e], 1e-3) << "t=" << t;
    }
    cold_prev = c.alloc;
    warm_prev = w.alloc;
  }
}

TEST(P2Pipeline, ResetWarmStartForcesColdSolve) {
  const Instance inst = make_instance(3, 50.0, 23);
  const InputSeries inputs = InputSeries::truth(inst);
  P2Workspace ws(inst, {});
  Allocation prev = Allocation::zeros(inst.num_edges());
  prev = ws.solve(inputs, 0, prev).alloc;
  EXPECT_TRUE(ws.solve(inputs, 1, prev).timing.warm_started);
  ws.reset_warm_start();
  EXPECT_FALSE(ws.solve(inputs, 1, prev).timing.warm_started);
}

// A tier-1 cloud with no admissible edges used to poison the even-split
// start with a division by zero; it must now be skipped when its demand is
// zero and rejected with a clear error when demand is positive.
Instance instance_with_empty_sla_group() {
  Instance inst;
  inst.tier2_sites.resize(1);
  inst.tier1_sites.resize(2);
  inst.edges = {{0, 0}};  // only tier-1 cloud 0 has an edge
  inst.edges_of_tier1 = {{0}, {}};
  inst.edges_of_tier2 = {{0}};
  inst.horizon = 1;
  inst.tier2_price = {{1.0}};
  inst.edge_price = {1.0};
  inst.tier2_reconfig = {1.0};
  inst.edge_reconfig = {1.0};
  inst.tier2_capacity = {10.0};
  inst.edge_capacity = {10.0};
  inst.demand = {{1.0, 0.0}};
  return inst;
}

TEST(P2Pipeline, EmptySlaGroupWithZeroDemandIsSkipped) {
  const Instance inst = instance_with_empty_sla_group();
  const Vec v =
      p2_strictly_feasible_point(inst, InputSeries::truth(inst), 0);
  for (const double value : v) EXPECT_TRUE(std::isfinite(value));
  const P2Solution sol = solve_p2(inst, InputSeries::truth(inst), 0,
                                  Allocation::zeros(1));
  EXPECT_TRUE(std::isfinite(sol.objective));
  EXPECT_GT(sol.alloc.x[0], 0.9);  // demand of cloud 0 still covered
}

TEST(P2Pipeline, EmptySlaGroupWithPositiveDemandThrows) {
  Instance inst = instance_with_empty_sla_group();
  inst.demand[0][1] = 0.5;  // demand at the edgeless tier-1 cloud
  EXPECT_THROW(
      p2_strictly_feasible_point(inst, InputSeries::truth(inst), 0),
      util::CheckError);
}

}  // namespace
}  // namespace sora::core
