// sora_golden_check — tolerance-based diff of two flat metric JSON files
// (one object, string keys, numeric values), as written by
// eval::write_metrics_json / sora_cli --scenario-out. Used by the CI
// scenario-regression job to compare a fresh run against the golden files
// under tests/golden/.
//
//   sora_golden_check --golden tests/golden/scenario_misreport.json
//                     --got /tmp/misreport.json [--rtol 0.05] [--atol 1e-9]
//
// A value passes when |got - golden| <= atol + rtol * |golden|. Keys present
// on only one side are errors (a metric silently disappearing is exactly the
// regression this tool exists to catch). Exit 0 on match, 1 on any
// difference, 2 on usage/IO errors.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "util/options.hpp"

namespace {

bool load_metrics(const std::string& path, std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "sora_golden_check: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const sora::obs::json::Value doc = sora::obs::json::parse(text.str());
    for (const auto& [key, value] : doc.as_object())
      out[key] = value.as_number();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sora_golden_check: %s: %s\n", path.c_str(),
                 e.what());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = sora::util::Options::parse(
      argc, argv, {"golden", "got", "rtol", "atol"});
  const std::string golden_path = opts.get_string("golden", "");
  const std::string got_path = opts.get_string("got", "");
  if (golden_path.empty() || got_path.empty()) {
    std::fprintf(stderr,
                 "usage: sora_golden_check --golden FILE --got FILE "
                 "[--rtol R] [--atol A]\n");
    return 2;
  }
  const double rtol = opts.get_double("rtol", 0.05);
  const double atol = opts.get_double("atol", 1e-9);

  std::map<std::string, double> golden, got;
  if (!load_metrics(golden_path, golden) || !load_metrics(got_path, got))
    return 2;

  std::size_t failures = 0;
  for (const auto& [key, want] : golden) {
    const auto it = got.find(key);
    if (it == got.end()) {
      std::printf("MISSING  %-40s golden %.6g, absent in %s\n", key.c_str(),
                  want, got_path.c_str());
      ++failures;
      continue;
    }
    const double have = it->second;
    const double budget = atol + rtol * std::abs(want);
    if (std::isnan(have) || std::abs(have - want) > budget) {
      std::printf("DIFF     %-40s golden %.6g, got %.6g (|d| %.3g > %.3g)\n",
                  key.c_str(), want, have, std::abs(have - want), budget);
      ++failures;
    }
  }
  for (const auto& [key, have] : got) {
    if (golden.count(key)) continue;
    std::printf("EXTRA    %-40s got %.6g, absent in golden\n", key.c_str(),
                have);
    ++failures;
  }

  if (failures > 0) {
    std::printf("sora_golden_check: %zu difference(s) vs %s (rtol %.3g, "
                "atol %.3g)\n",
                failures, golden_path.c_str(), rtol, atol);
    return 1;
  }
  std::printf("sora_golden_check: %zu metric(s) match %s (rtol %.3g)\n",
              golden.size(), golden_path.c_str(), rtol);
  return 0;
}
