// Shared decision types for the two-tier problem P1.
//
// A slot decision ("Allocation") holds, per admissible (j, i) edge e:
//   x[e] — tier-2 cloud resources allocated at i for workload from j (x_ijt)
//   y[e] — network resources on the (i, j) link (y_ijt)
//   z[e] — tier-1 processing resources at j for flow toward i (z_ijt);
//          ignored (kept zero) unless the instance models the F_1 term.
// The paper's auxiliary s_ijt is eliminated at this level: a decision covers
// demand iff sum_{e in edges_of_tier1[j]} min(x[e], y[e][, z[e]]) >= lambda_jt.
#pragma once

#include <vector>

#include "cloudnet/instance.hpp"
#include "linalg/vector_ops.hpp"

namespace sora::core {

using cloudnet::Instance;
using linalg::Vec;

struct Allocation {
  Vec x;  // per edge
  Vec y;  // per edge
  Vec z;  // per edge (only meaningful when Instance::has_tier1())

  static Allocation zeros(std::size_t num_edges) {
    return Allocation{Vec(num_edges, 0.0), Vec(num_edges, 0.0),
                      Vec(num_edges, 0.0)};
  }
};

struct Trajectory {
  std::vector<Allocation> slots;  // one per time slot, slots[t] decides slot t

  std::size_t horizon() const { return slots.size(); }
};

struct CostBreakdown {
  double allocation = 0.0;
  double reconfiguration = 0.0;

  double total() const { return allocation + reconfiguration; }

  CostBreakdown& operator+=(const CostBreakdown& o) {
    allocation += o.allocation;
    reconfiguration += o.reconfiguration;
    return *this;
  }
};

}  // namespace sora::core
