#include "core/certificate.hpp"

#include <algorithm>
#include <cmath>

#include "core/competitive.hpp"
#include "core/cost.hpp"
#include "core/p2_subproblem.hpp"
#include "core/regularizer.hpp"
#include "solver/lp.hpp"
#include "util/check.hpp"

namespace sora::core {
namespace {

using solver::kInf;
using solver::LinTerm;
using solver::LpBuilder;

// Row bookkeeping for P3 over the whole horizon: all constraints are ">="
// rows, so LP duality reads: y >= 0, A^T y <= c, D = rhs^T y.
struct P3Rows {
  // [t][...] row ids.
  std::vector<std::vector<std::size_t>> rho, phi, sigma;   // per edge
  std::vector<std::vector<std::size_t>> gamma;             // per tier-1
  std::vector<std::vector<std::size_t>> alpha, delta;      // per tier-2
  std::vector<std::vector<std::size_t>> beta, theta;       // per edge
  std::vector<std::vector<std::size_t>> alpha_z;           // per tier-1
};

// Variable layout of P3 per slot: [x | y | s | v | w] (+ [z | vz]).
struct P3Layout {
  std::size_t E, I, J;
  bool with_z;
  std::size_t stride() const {
    return 3 * E + I + E + (with_z ? E + J : 0);
  }
  std::size_t x(std::size_t t, std::size_t e) const { return t * stride() + e; }
  std::size_t y(std::size_t t, std::size_t e) const {
    return t * stride() + E + e;
  }
  std::size_t s(std::size_t t, std::size_t e) const {
    return t * stride() + 2 * E + e;
  }
  std::size_t v(std::size_t t, std::size_t i) const {
    return t * stride() + 3 * E + i;
  }
  std::size_t w(std::size_t t, std::size_t e) const {
    return t * stride() + 3 * E + I + e;
  }
  std::size_t z(std::size_t t, std::size_t e) const {
    return t * stride() + 4 * E + I + e;
  }
  std::size_t vz(std::size_t t, std::size_t j) const {
    return t * stride() + 5 * E + I + j;
  }
};

}  // namespace

CertificateReport verify_competitive_certificate(const Instance& inst,
                                                 const RoaOptions& options) {
  const std::size_t E = inst.num_edges();
  const std::size_t I = inst.num_tier2();
  const std::size_t J = inst.num_tier1();
  const std::size_t T = inst.horizon;
  const bool with_z = inst.has_tier1();
  const P3Layout layout{E, I, J, with_z};
  const auto inputs = InputSeries::truth(inst);

  // ---- Run ROA, keeping the per-slot KKT multipliers.
  std::vector<P2Solution> slots;
  slots.reserve(T);
  Allocation prev = Allocation::zeros(E);
  for (std::size_t t = 0; t < T; ++t) {
    slots.push_back(solve_p2(inst, inputs, t, prev, options));
    prev = slots.back().alloc;
  }
  Trajectory traj;
  for (const auto& s : slots) traj.slots.push_back(s.alloc);

  // ---- Build P3 (the relaxation, Step 2.1) as one LP over the horizon.
  LpBuilder b;
  for (std::size_t t = 0; t < T; ++t) {
    for (std::size_t e = 0; e < E; ++e)
      b.add_variable(0.0, kInf, inputs.price(t, inst.edges[e].tier2));  // x
    for (std::size_t e = 0; e < E; ++e)
      b.add_variable(0.0, kInf, inst.edge_price[e]);  // y
    for (std::size_t e = 0; e < E; ++e) b.add_variable(0.0, kInf, 0.0);  // s
    for (std::size_t i = 0; i < I; ++i)
      b.add_variable(0.0, kInf, inst.tier2_reconfig[i]);  // v
    for (std::size_t e = 0; e < E; ++e)
      b.add_variable(0.0, kInf, inst.edge_reconfig[e]);  // w
    if (with_z) {
      for (std::size_t e = 0; e < E; ++e)
        b.add_variable(0.0, kInf,
                       inst.tier1_price[t][inst.edges[e].tier1]);  // z
      for (std::size_t j = 0; j < J; ++j)
        b.add_variable(0.0, kInf, inst.tier1_reconfig[j]);  // vz
    }
  }

  P3Rows rows;
  rows.rho.assign(T, std::vector<std::size_t>(E));
  rows.phi.assign(T, std::vector<std::size_t>(E));
  rows.gamma.assign(T, std::vector<std::size_t>(J));
  rows.alpha.assign(T, std::vector<std::size_t>(I));
  rows.beta.assign(T, std::vector<std::size_t>(E));
  rows.delta.assign(T, std::vector<std::size_t>(I, SIZE_MAX));
  rows.theta.assign(T, std::vector<std::size_t>(E, SIZE_MAX));
  if (with_z) {
    rows.sigma.assign(T, std::vector<std::size_t>(E));
    rows.alpha_z.assign(T, std::vector<std::size_t>(J));
  }

  for (std::size_t t = 0; t < T; ++t) {
    double total_demand = 0.0;
    for (std::size_t j = 0; j < J; ++j) total_demand += inputs.lambda(t, j);

    for (std::size_t e = 0; e < E; ++e) {
      rows.rho[t][e] =
          b.add_ge({{layout.x(t, e), 1.0}, {layout.s(t, e), -1.0}}, 0.0);
      rows.phi[t][e] =
          b.add_ge({{layout.y(t, e), 1.0}, {layout.s(t, e), -1.0}}, 0.0);
      if (with_z)
        rows.sigma[t][e] =
            b.add_ge({{layout.z(t, e), 1.0}, {layout.s(t, e), -1.0}}, 0.0);
    }
    for (std::size_t j = 0; j < J; ++j) {
      std::vector<LinTerm> terms;
      for (const std::size_t e : inst.edges_of_tier1[j])
        terms.push_back({layout.s(t, e), 1.0});
      rows.gamma[t][j] = b.add_ge(terms, inputs.lambda(t, j));
    }
    // (7a): v_i - X_i(t) + X_i(t-1) >= 0.
    for (std::size_t i = 0; i < I; ++i) {
      std::vector<LinTerm> terms{{layout.v(t, i), 1.0}};
      for (const std::size_t e : inst.edges_of_tier2[i]) {
        terms.push_back({layout.x(t, e), -1.0});
        if (t > 0) terms.push_back({layout.x(t - 1, e), 1.0});
      }
      rows.alpha[t][i] = b.add_ge(terms, 0.0);
    }
    // (7b): w_e - y_e(t) + y_e(t-1) >= 0.
    for (std::size_t e = 0; e < E; ++e) {
      std::vector<LinTerm> terms{{layout.w(t, e), 1.0},
                                 {layout.y(t, e), -1.0}};
      if (t > 0) terms.push_back({layout.y(t - 1, e), 1.0});
      rows.beta[t][e] = b.add_ge(terms, 0.0);
    }
    // (7d).
    for (std::size_t i = 0; i < I; ++i) {
      const double rhs = total_demand - inst.tier2_capacity[i];
      if (rhs <= 0.0) continue;
      std::vector<LinTerm> terms;
      for (std::size_t e = 0; e < E; ++e)
        if (inst.edges[e].tier2 != i) terms.push_back({layout.x(t, e), 1.0});
      rows.delta[t][i] = b.add_ge(terms, rhs);
    }
    // (7e).
    for (std::size_t e = 0; e < E; ++e) {
      const std::size_t j = inst.edges[e].tier1;
      const double rhs = inputs.lambda(t, j) - inst.edge_capacity[e];
      if (rhs <= 0.0) continue;
      std::vector<LinTerm> terms;
      for (const std::size_t e2 : inst.edges_of_tier1[j])
        if (e2 != e) terms.push_back({layout.y(t, e2), 1.0});
      rows.theta[t][e] = b.add_ge(terms, rhs);
    }
    // z analogue of (7a).
    if (with_z) {
      for (std::size_t j = 0; j < J; ++j) {
        std::vector<LinTerm> terms{{layout.vz(t, j), 1.0}};
        for (const std::size_t e : inst.edges_of_tier1[j]) {
          terms.push_back({layout.z(t, e), -1.0});
          if (t > 0) terms.push_back({layout.z(t - 1, e), 1.0});
        }
        rows.alpha_z[t][j] = b.add_ge(terms, 0.0);
      }
    }
  }
  const solver::LpModel p3 = b.build();

  // ---- Assemble the dual point (Step 3.2).
  Vec dual(p3.num_rows(), 0.0);
  Allocation prev_alloc = Allocation::zeros(E);
  for (std::size_t t = 0; t < T; ++t) {
    const P2Solution& s = slots[t];
    for (std::size_t e = 0; e < E; ++e) {
      dual[rows.rho[t][e]] = s.rho[e];
      dual[rows.phi[t][e]] = s.phi[e];
      if (rows.theta[t][e] != SIZE_MAX) dual[rows.theta[t][e]] = s.theta[e];
      if (with_z) dual[rows.sigma[t][e]] = s.sigma[e];
    }
    for (std::size_t j = 0; j < J; ++j) dual[rows.gamma[t][j]] = s.gamma[j];
    for (std::size_t i = 0; i < I; ++i)
      if (rows.delta[t][i] != SIZE_MAX) dual[rows.delta[t][i]] = s.delta[i];

    // Closed forms: alpha_it = (b_i/eta_i) ln((C_i+eps)/(X_{i,t-1}+eps)),
    // beta_et = (d_e/eta'_e) ln((B_e+eps')/(y_{e,t-1}+eps')).
    const Vec prev_totals = tier2_totals(inst, prev_alloc.x);
    for (std::size_t i = 0; i < I; ++i) {
      const double eta = regularizer_eta(inst.tier2_capacity[i], options.eps);
      if (eta <= 0.0) continue;
      dual[rows.alpha[t][i]] =
          inst.tier2_reconfig[i] / eta *
          std::log((inst.tier2_capacity[i] + options.eps) /
                   (prev_totals[i] + options.eps));
    }
    for (std::size_t e = 0; e < E; ++e) {
      const double eta =
          regularizer_eta(inst.edge_capacity[e], options.eps_prime);
      if (eta <= 0.0) continue;
      dual[rows.beta[t][e]] =
          inst.edge_reconfig[e] / eta *
          std::log((inst.edge_capacity[e] + options.eps_prime) /
                   (prev_alloc.y[e] + options.eps_prime));
    }
    if (with_z) {
      const Vec prev_t1 = tier1_totals(inst, prev_alloc.z);
      for (std::size_t j = 0; j < J; ++j) {
        const double eta =
            regularizer_eta(inst.tier1_capacity[j], options.eps);
        if (eta <= 0.0) continue;
        dual[rows.alpha_z[t][j]] =
            inst.tier1_reconfig[j] / eta *
            std::log((inst.tier1_capacity[j] + options.eps) /
                     (prev_t1[j] + options.eps));
      }
    }
    prev_alloc = s.alloc;
  }

  // ---- Check dual feasibility: y >= 0 and A^T y <= c. Violations are
  // measured RELATIVE to the local scale so the metric is comparable across
  // reconfiguration weights (the multipliers grow with b).
  CertificateReport report;
  double violation = 0.0;
  for (double v : dual)
    violation = std::max(violation, -v / (1.0 + std::fabs(v)));
  const Vec aty = p3.a.multiply_transpose(dual);
  for (std::size_t col = 0; col < p3.num_vars(); ++col) {
    const double scale =
        1.0 + std::fabs(p3.objective[col]) + std::fabs(aty[col]);
    violation = std::max(violation, (aty[col] - p3.objective[col]) / scale);
  }
  report.max_dual_violation = violation;

  // ---- Weak duality value D = rhs^T y (all rows are >= rows).
  double d_value = 0.0;
  for (std::size_t r = 0; r < p3.num_rows(); ++r)
    d_value += p3.row_lower[r] * dual[r];
  report.dual_objective = d_value;

  report.online_cost = total_cost(inst, traj).total();
  report.certified_ratio =
      d_value > 0.0 ? report.online_cost / d_value : kInf;
  report.theorem1_ratio = theoretical_ratio(inst, options.eps,
                                            options.eps_prime);
  return report;
}

}  // namespace sora::core
