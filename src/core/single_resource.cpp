#include "core/single_resource.hpp"

#include <algorithm>
#include <cmath>

#include "core/regularizer.hpp"
#include "solver/simplex.hpp"
#include "util/check.hpp"

namespace sora::core {

using linalg::Vec;
using solver::kInf;
using solver::LinTerm;
using solver::LpBuilder;

void SingleResourceInstance::validate() const {
  SORA_CHECK(!demand.empty());
  SORA_CHECK(price.size() == demand.size());
  SORA_CHECK(reconfig > 0.0);
  for (std::size_t t = 0; t < demand.size(); ++t) {
    SORA_CHECK_MSG(demand[t] >= 0.0, "negative demand");
    SORA_CHECK_MSG(demand[t] <= capacity + 1e-12, "demand above capacity");
    SORA_CHECK_MSG(price[t] > 0.0, "non-positive price");
  }
}

double single_total_cost(const SingleResourceInstance& inst, const Vec& x) {
  SORA_CHECK(x.size() == inst.horizon());
  double cost = 0.0;
  double prev = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    cost += inst.price[t] * x[t];
    if (x[t] > prev) cost += inst.reconfig * (x[t] - prev);
    prev = x[t];
  }
  return cost;
}

double single_violation(const SingleResourceInstance& inst, const Vec& x) {
  double worst = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    worst = std::max(worst, inst.demand[t] - x[t]);
    worst = std::max(worst, x[t] - inst.capacity);
  }
  return worst;
}

Vec single_roa(const SingleResourceInstance& inst, double eps) {
  inst.validate();
  SORA_CHECK(eps > 0.0);
  Vec x(inst.horizon());
  double prev = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double decay = decay_point(prev, inst.price[t], inst.reconfig,
                                     inst.capacity, eps);
    x[t] = std::max(inst.demand[t], std::max(decay, 0.0));
    prev = x[t];
  }
  return x;
}

Vec single_greedy(const SingleResourceInstance& inst) {
  inst.validate();
  return inst.demand;
}

namespace {

// Offline optimum over slots [t0, t1) given x_{t0-1} = prev; optionally pin
// the final slot. Returns the plan for the window.
Vec offline_window(const SingleResourceInstance& inst, std::size_t t0,
                   std::size_t t1, double prev) {
  LpBuilder b;
  const std::size_t w = t1 - t0;
  // x variables then u variables.
  for (std::size_t k = 0; k < w; ++k)
    b.add_variable(inst.demand[t0 + k], inst.capacity, inst.price[t0 + k]);
  for (std::size_t k = 0; k < w; ++k)
    b.add_variable(0.0, kInf, inst.reconfig);
  for (std::size_t k = 0; k < w; ++k) {
    std::vector<LinTerm> terms{{w + k, 1.0}, {k, -1.0}};
    if (k > 0) terms.push_back({k - 1, 1.0});
    b.add_ge(terms, k > 0 ? 0.0 : -prev);
  }
  const auto sol = solver::solve_simplex(b.build());
  SORA_CHECK_MSG(sol.ok(), "single-resource window LP failed: " + sol.detail);
  return Vec(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(w));
}

}  // namespace

Vec single_offline(const SingleResourceInstance& inst) {
  inst.validate();
  return offline_window(inst, 0, inst.horizon(), 0.0);
}

Vec single_lcp(const SingleResourceInstance& inst) {
  inst.validate();
  Vec x(inst.horizon());
  double prev = 0.0;
  for (std::size_t t = 0; t < x.size(); ++t) {
    const double lower = inst.demand[t];
    // Reverse-reconfiguration one-shot: min a_t x + b [prev - x]^+ over
    // x in [lambda_t, C]. While a_t < b it pays to stay at prev.
    const double upper = inst.price[t] < inst.reconfig
                             ? std::max(inst.demand[t], prev)
                             : inst.demand[t];
    // Lazy principle: move only when pushed out of the band [lower, upper].
    x[t] = std::max(lower, std::min(prev, upper));
    prev = x[t];
  }
  return x;
}

Vec single_fhc(const SingleResourceInstance& inst, std::size_t w) {
  inst.validate();
  SORA_CHECK(w >= 1);
  Vec x;
  x.reserve(inst.horizon());
  double prev = 0.0;
  for (std::size_t t0 = 0; t0 < inst.horizon(); t0 += w) {
    const std::size_t t1 = std::min(inst.horizon(), t0 + w);
    const Vec block = offline_window(inst, t0, t1, prev);
    for (double v : block) x.push_back(v);
    prev = x.back();
  }
  return x;
}

Vec single_rhc(const SingleResourceInstance& inst, std::size_t w) {
  inst.validate();
  SORA_CHECK(w >= 1);
  Vec x(inst.horizon());
  double prev = 0.0;
  for (std::size_t t = 0; t < inst.horizon(); ++t) {
    const std::size_t t1 = std::min(inst.horizon(), t + w);
    const Vec block = offline_window(inst, t, t1, prev);
    x[t] = block[0];
    prev = x[t];
  }
  return x;
}

double single_theoretical_ratio(const SingleResourceInstance& inst,
                                double eps) {
  SORA_CHECK(eps > 0.0);
  return 1.0 + (inst.capacity + eps) * regularizer_eta(inst.capacity, eps);
}

}  // namespace sora::core
