#include "solver/ipm.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "solver/lp.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace sora::solver {
namespace {

using linalg::Cholesky;
using linalg::Matrix;
using linalg::Vec;

// Slacks s = h - Gx; all must stay strictly positive.
Vec slacks(const Matrix& g, const Vec& h, const Vec& x) {
  Vec s = h;
  const Vec gx = g.multiply(x);
  for (std::size_t i = 0; i < s.size(); ++i) s[i] -= gx[i];
  return s;
}

double min_slack(const Vec& s) {
  double m = kInf;
  for (double v : s) m = std::min(m, v);
  return m;
}

// phi(x) = -sum log s_i
double barrier_value(const Vec& s) {
  double v = 0.0;
  for (double si : s) v -= std::log(si);
  return v;
}

}  // namespace

IpmResult solve_barrier(const ConvexObjective& objective, const Matrix& g,
                        const Vec& h, const Vec& x0, const IpmOptions& options) {
  const std::size_t n = x0.size();
  const std::size_t m = g.rows();
  SORA_CHECK(g.cols() == n && h.size() == m);

  IpmResult result;
  Vec x = x0;
  {
    const Vec s0 = slacks(g, h, x);
    if (min_slack(s0) <= 0.0) {
      result.status = SolveStatus::kNumericalError;
      result.detail = "starting point not strictly feasible (min slack " +
                      std::to_string(min_slack(s0)) + ")";
      result.x = x;
      return result;
    }
  }

  double t = options.t0;
  std::size_t newton_budget = options.max_newton_steps;
  std::size_t steps_used = 0;
  // Last point where the Newton decrement certified convergence to the
  // central path, with its barrier multiplier. Dual recovery 1/(t*s) is only
  // trustworthy at such points; line-search stalls at extreme t would
  // otherwise poison the multipliers.
  Vec centered_x;
  double centered_t = 0.0;

  while (true) {
    // ---- Center for the current t with damped Newton.
    bool centered = false;
    std::size_t steps_this_center = 0;
    while (newton_budget > 0 &&
           steps_this_center < options.max_steps_per_center) {
      ++steps_this_center;
      const Vec s = slacks(g, h, x);
      // Gradient of t f + phi: t grad f + G^T (1/s).
      Vec grad = objective.gradient(x);
      linalg::scale(grad, t);
      // Floor the slacks inside the derivative assembly: a slack driven to
      // ~1e-14 would otherwise produce ~1e28 Hessian entries and destroy the
      // factorization. The line search still treats the true slacks.
      Vec inv_s(m);
      for (std::size_t i = 0; i < m; ++i)
        inv_s[i] = 1.0 / std::max(s[i], 1e-12);
      const Vec gt_inv_s = g.multiply_transpose(inv_s);
      for (std::size_t j = 0; j < n; ++j) grad[j] += gt_inv_s[j];

      // Hessian: t H_f + G^T diag(1/s^2) G.
      Matrix hess = objective.hessian(x);
      for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) hess(r, c) *= t;
      for (std::size_t i = 0; i < m; ++i) {
        const double w = inv_s[i] * inv_s[i];
        const double* grow = g.row_ptr(i);
        for (std::size_t r = 0; r < n; ++r) {
          const double gr = grow[r];
          if (gr == 0.0) continue;
          double* hrow = hess.row_ptr(r);
          const double wgr = w * gr;
          for (std::size_t c = 0; c < n; ++c) hrow[c] += wgr * grow[c];
        }
      }

      const Cholesky chol =
          Cholesky::factor_regularized(hess, 1e-12, 1e16);
      Vec neg_grad(n);
      for (std::size_t j = 0; j < n; ++j) neg_grad[j] = -grad[j];
      const Vec dx = chol.solve(neg_grad);

      const double decrement2 = -linalg::dot(grad, dx);  // lambda^2
      --newton_budget;
      ++steps_used;
      if (decrement2 / 2.0 <= options.newton_tol) {
        centered = true;
        centered_x = x;
        centered_t = t;
        break;
      }

      // ---- Backtracking line search on t f + phi, keeping s > 0.
      double step = 1.0;
      {
        // First shrink until strictly feasible.
        const Vec gdx = g.multiply(dx);
        for (std::size_t i = 0; i < m; ++i) {
          if (gdx[i] > 0.0) {
            const double limit = s[i] / gdx[i];
            if (0.99 * limit < step) step = 0.99 * limit;
          }
        }
      }
      const double f0 = t * objective.value(x) + barrier_value(s);
      const double slope = linalg::dot(grad, dx);  // negative
      bool moved = false;
      for (int ls = 0; ls < 60; ++ls) {
        Vec x_try = x;
        linalg::axpy(step, dx, x_try);
        const Vec s_try = slacks(g, h, x_try);
        if (min_slack(s_try) > 0.0) {
          const double f_try =
              t * objective.value(x_try) + barrier_value(s_try);
          if (f_try <= f0 + options.line_search_alpha * step * slope) {
            x = std::move(x_try);
            moved = true;
            break;
          }
        }
        step *= options.line_search_beta;
      }
      if (!moved) {
        // Stuck: gradient/Hessian inconsistency at this scale. Treat the
        // current point as centered; the outer loop decides if the gap is
        // acceptable.
        centered = true;
        break;
      }
    }

    if (options.log_progress) {
      SORA_LOG_DEBUG << "ipm t=" << t << " gap<=" << (m / t)
                     << " f=" << objective.value(x);
    }

    if (static_cast<double>(m) / t < options.tol) {
      result.status = SolveStatus::kOptimal;
      break;
    }
    if (newton_budget == 0) {
      const double gap = static_cast<double>(m) / t;
      result.status = gap < options.acceptable_gap
                          ? SolveStatus::kOptimal
                          : SolveStatus::kIterationLimit;
      result.detail = "newton budget exhausted at gap " + std::to_string(gap);
      break;
    }
    t *= options.mu;
  }

  result.x = x;
  result.objective = objective.value(x);
  result.newton_steps = steps_used;
  // Multipliers from the last certified center (fall back to the final
  // point when no centering ever converged).
  const Vec& dual_point = centered_x.empty() ? x : centered_x;
  const double dual_t = centered_x.empty() ? t : centered_t;
  const Vec s = slacks(g, h, dual_point);
  result.ineq_dual.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    result.ineq_dual[i] = 1.0 / (dual_t * std::max(s[i], 1e-300));
  return result;
}

}  // namespace sora::solver
