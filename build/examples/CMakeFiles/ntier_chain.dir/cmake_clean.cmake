file(REMOVE_RECURSE
  "CMakeFiles/ntier_chain.dir/ntier_chain.cpp.o"
  "CMakeFiles/ntier_chain.dir/ntier_chain.cpp.o.d"
  "ntier_chain"
  "ntier_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntier_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
