# Empty compiler generated dependencies file for test_regularizer.
# This may be replaced when dependencies are built.
