// Versioned binary snapshots of the sora_serve daemon state.
//
// A snapshot captures everything the slot-solve chain depends on across
// slots: the next slot index, the previous decision x_{t-1}, the
// P2Workspace warm-start vector (the packed [x|y|s|z] previous optimum),
// and the running cost/health counters. Restoring it into a daemon built
// from the SAME instance resumes the trace with bit-identical
// continuation — per-slot state (constraint RHS, objective prices, start
// point) is fully rewritten each slot, so this vector is the only carried
// state.
//
// On-disk format (little-endian, doubles as raw IEEE-754 bytes):
//   char[8]  magic "SORASNAP"
//   u32      version (kSnapshotVersion)
//   u32      flags (bit 0: warm-start vector present)
//   u64      next_slot, num_tier1, num_tier2, num_edges, warm_size
//   f64      cost.allocation, cost.reconfiguration
//   u64      slots, degraded_slots, fallback_slots, deadline_misses
//   f64[E]   prev.x, then prev.y, then prev.z
//   f64[W]   warm-start vector (warm_size entries; 0 when cold)
//   u64      FNV-1a checksum of every preceding byte
//
// Writes are atomic: serialize to <path>.tmp, flush, then rename(2) over
// <path>. A crash between write and rename leaves the previous snapshot
// intact (covered by test).
#pragma once

#include <cstdint>
#include <string>

#include "core/types.hpp"

namespace sora::serve {

inline constexpr std::uint32_t kSnapshotVersion = 1;

struct ServeSnapshot {
  std::size_t next_slot = 0;
  // Structure guard: restore refuses a snapshot whose topology dimensions
  // disagree with the daemon's instance.
  std::size_t num_tier1 = 0;
  std::size_t num_tier2 = 0;
  std::size_t num_edges = 0;

  core::Allocation prev;      // x_{t-1}
  bool has_warm = false;      // workspace had a previous optimum
  core::Vec warm;             // packed [x|y|s|z] warm-start state

  core::CostBreakdown cost;   // running totals over served slots
  std::uint64_t slots = 0;
  std::uint64_t degraded_slots = 0;
  std::uint64_t fallback_slots = 0;
  std::uint64_t deadline_misses = 0;
};

/// Serialize to the on-disk byte layout (exposed for the atomicity tests).
std::string encode_snapshot(const ServeSnapshot& snap);

/// Decode bytes; returns false (with a reason) on bad magic, version,
/// checksum, or truncation.
bool decode_snapshot(const std::string& bytes, ServeSnapshot& out,
                     std::string* error = nullptr);

/// Atomic write: <path>.tmp + rename. Returns false with a reason on any
/// I/O failure; the previous snapshot at <path> survives every failure
/// mode short of the final rename.
bool write_snapshot(const std::string& path, const ServeSnapshot& snap,
                    std::string* error = nullptr);

/// Load + decode. Returns false with a reason when the file is missing,
/// unreadable, or fails validation.
bool read_snapshot(const std::string& path, ServeSnapshot& out,
                   std::string* error = nullptr);

}  // namespace sora::serve
