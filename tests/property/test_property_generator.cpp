// Generator determinism and structural guarantees across all regimes, plus
// the sora-repro round-trip that failing property tests rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "cloudnet/instance.hpp"
#include "testing/generator.hpp"
#include "testing/repro.hpp"

namespace sora::testing {
namespace {

constexpr std::uint64_t kSeedsPerRegime = 12;

TEST(PropertyGenerator, StructurallySoundAcrossRegimes) {
  for (const Regime regime : kAllRegimes) {
    for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
      GeneratorConfig cfg;
      cfg.regime = regime;
      cfg.seed = seed;
      SCOPED_TRACE(cfg.describe());
      const cloudnet::Instance inst = generate_instance(cfg);

      ASSERT_GE(inst.horizon, 2u);
      ASSERT_GE(inst.num_tier1(), 2u);
      ASSERT_GE(inst.num_tier2(), 2u);
      ASSERT_EQ(inst.demand.size(), inst.horizon);
      ASSERT_EQ(inst.tier2_price.size(), inst.horizon);
      ASSERT_EQ(inst.edge_price.size(), inst.num_edges());
      ASSERT_EQ(inst.edge_capacity.size(), inst.num_edges());

      // Edgeless tier-1 clouds must carry zero demand (else infeasible by
      // construction, which the generator promises never to produce).
      for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
        if (!inst.edges_of_tier1[j].empty()) continue;
        for (std::size_t t = 0; t < inst.horizon; ++t)
          EXPECT_EQ(inst.demand[t][j], 0.0) << "t=" << t << " j=" << j;
      }
      for (std::size_t t = 0; t < inst.horizon; ++t)
        for (std::size_t j = 0; j < inst.num_tier1(); ++j)
          EXPECT_GE(inst.demand[t][j], 0.0);
      for (const double p : inst.edge_price) EXPECT_GE(p, 0.0);
    }
  }
}

TEST(PropertyGenerator, RegimesProduceTheirSignatures) {
  // Empty-SLA regime: at least one edgeless tier-1 cloud.
  GeneratorConfig cfg;
  cfg.regime = Regime::kEmptySlaGroups;
  bool found_empty = false;
  for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
    cfg.seed = seed;
    const auto inst = generate_instance(cfg);
    for (std::size_t j = 0; j < inst.num_tier1(); ++j)
      found_empty |= inst.edges_of_tier1[j].empty();
  }
  EXPECT_TRUE(found_empty);

  // Zero-demand regime: some zero entries survive.
  cfg.regime = Regime::kZeroDemand;
  bool found_zero = false;
  for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
    cfg.seed = seed;
    const auto inst = generate_instance(cfg);
    for (const auto& row : inst.demand)
      for (const double d : row) found_zero |= d == 0.0;
  }
  EXPECT_TRUE(found_zero);

  // Saturated regime: some feasibility-transfer row (3d) is active at some
  // slot — total demand above a single cloud's capacity.
  cfg.regime = Regime::kCapacitySaturated;
  bool found_active = false;
  for (std::uint64_t seed = 1; seed <= kSeedsPerRegime; ++seed) {
    cfg.seed = seed;
    const auto inst = generate_instance(cfg);
    for (std::size_t t = 0; t < inst.horizon; ++t)
      for (const double cap : inst.tier2_capacity)
        found_active |= inst.total_demand(t) > cap;
  }
  EXPECT_TRUE(found_active);
}

TEST(PropertyGenerator, DeterministicInSeedAndRegime) {
  for (const Regime regime : kAllRegimes) {
    GeneratorConfig cfg;
    cfg.regime = regime;
    cfg.seed = 77;
    const auto a = generate_instance(cfg);
    const auto b = generate_instance(cfg);
    EXPECT_EQ(serialize_instance(a), serialize_instance(b))
        << cfg.describe();
    cfg.seed = 78;
    const auto c = generate_instance(cfg);
    EXPECT_NE(serialize_instance(a), serialize_instance(c));
  }
}

TEST(PropertyGenerator, ReproRoundTripsEveryRegime) {
  for (const Regime regime : kAllRegimes) {
    GeneratorConfig cfg;
    cfg.regime = regime;
    cfg.seed = 5;
    SCOPED_TRACE(cfg.describe());
    const auto inst = generate_instance(cfg);
    const std::string text =
        serialize_instance(inst, "context line 1\ncontext line 2");
    const auto back = parse_instance(text);
    // A second serialization (without context) of the parsed instance must
    // reproduce the numeric payload bit-for-bit.
    EXPECT_EQ(serialize_instance(inst), serialize_instance(back));
    ASSERT_EQ(back.num_edges(), inst.num_edges());
    ASSERT_EQ(back.horizon, inst.horizon);
    EXPECT_EQ(back.has_tier1(), inst.has_tier1());
  }
}

TEST(PropertyGenerator, DumpAndLoadFile) {
  GeneratorConfig cfg;
  cfg.seed = 9;
  const auto inst = generate_instance(cfg);
  const std::string path = default_repro_path("generator unit:test");
  // Label sanitization: no characters outside [alnum-_.] in the file name.
  EXPECT_NE(path.find("sora-repro-generator-unit-test.txt"), std::string::npos);
  dump_instance(inst, path, "unit test dump");
  const auto back = load_instance(path);
  EXPECT_EQ(serialize_instance(inst), serialize_instance(back));
  std::remove(path.c_str());
}

TEST(PropertyGenerator, NTierInstancesAreWellFormed) {
  for (const Regime regime : kAllRegimes) {
    GeneratorConfig cfg;
    cfg.regime = regime;
    cfg.seed = 3;
    SCOPED_TRACE(cfg.describe());
    const core::NTierInstance inst = generate_ntier_instance(cfg);
    ASSERT_GE(inst.num_tiers, 3u);
    ASSERT_EQ(inst.demand.size(), inst.horizon);
    ASSERT_EQ(inst.link_price.size(), inst.num_links());
    ASSERT_EQ(inst.link_capacity.size(), inst.num_links());
    // Commodities with positive demand can reach the top tier.
    for (std::size_t j = 0; j < inst.num_demands(); ++j) {
      double demand = 0.0;
      for (const auto& row : inst.demand) demand += row[j];
      if (demand > 0.0) {
        EXPECT_FALSE(inst.admissible_links(j).empty());
      }
    }
  }
}

}  // namespace
}  // namespace sora::testing
