// Re-entrant per-block barrier solves for decomposed (ADMM / dual
// decomposition) pipelines.
//
// A BlockBarrier bundles everything one block of a decomposed problem needs
// to solve its subproblem repeatedly — across ADMM iterations within a slot
// and across slots — without reallocating or re-analysing:
//
//   * the block's CSR constraint matrix and rhs (structure fixed once, values
//     patchable between solves);
//   * an IpmScratch whose SparseNormalCache keeps the symbolic Cholesky
//     analysis alive for the block's fixed sparsity pattern;
//   * warm-start state (the previous block optimum) with the same
//     pull-to-interior blend escalation the monolithic P2 workspace uses.
//
// solve_barrier itself is re-entrant for distinct IpmScratch instances (its
// only shared state is atomic metrics), so distinct BlockBarrier objects may
// run concurrently on a thread pool. One BlockBarrier must not be used from
// two threads at once.
#pragma once

#include <cstddef>

#include "linalg/sparse.hpp"
#include "solver/ipm.hpp"

namespace sora::solver {

struct BlockSolveOptions {
  IpmOptions ipm;
  bool warm_start = true;
  /// Blend factor pulling the previous optimum toward the strictly interior
  /// anchor (escalated through {pull, 0.25, 0.5} until the blend clears the
  /// interior margin, matching core/p2_subproblem).
  double warm_start_pull = 0.05;
};

class BlockBarrier {
 public:
  BlockBarrier() = default;

  BlockBarrier(const BlockBarrier&) = delete;
  BlockBarrier& operator=(const BlockBarrier&) = delete;
  BlockBarrier(BlockBarrier&&) = default;
  BlockBarrier& operator=(BlockBarrier&&) = default;

  /// Install the block's constraints G x <= h. The CSR STRUCTURE must stay
  /// fixed across the block's lifetime for the symbolic cache to pay off;
  /// use mutable_values()/mutable_rhs() to patch values between solves.
  /// Calling set_problem again drops warm-start state and the cache.
  void set_problem(linalg::SparseMatrix g, linalg::Vec h);

  const linalg::SparseMatrix& constraints() const { return g_; }
  const linalg::Vec& rhs() const { return h_; }
  /// In-place value patching between solves (same sparsity / row count).
  linalg::SparseMatrix& mutable_constraints() { return g_; }
  linalg::Vec& mutable_rhs() { return h_; }

  /// min_r (h - G v)_r : positive iff v is strictly interior.
  double min_slack(const linalg::Vec& v);

  /// Solve min f(x) s.t. G x <= h, warm-starting from the previous optimum
  /// when available (blended toward `anchor` until strictly interior).
  /// `anchor` must itself be strictly interior; if neither the blend nor the
  /// anchor clears the margin the result reports kNumericalError without
  /// invoking the IPM. On success the optimum is retained as the next
  /// warm-start seed.
  IpmResult solve(const ConvexObjective& objective, const linalg::Vec& anchor,
                  const BlockSolveOptions& options);

  /// Stage a solve without invoking the IPM: compute the warm/cold starting
  /// point (same blend escalation as solve()) and the effective IpmOptions
  /// (warm t0 boost). Returns false — with `failure` filled exactly the way
  /// solve() would have reported it — when neither the blended warm start
  /// nor the anchor is strictly interior. On true, batch callers feed
  /// start()/scratch() to solve_barrier_batch and finish with commit();
  /// solve() itself is prepare + solve_barrier + commit.
  bool prepare(const linalg::Vec& anchor, const BlockSolveOptions& options,
               IpmOptions& effective, IpmResult& failure);
  /// Starting point staged by the last successful prepare().
  const linalg::Vec& start() const { return start_; }
  /// The block-private scratch (symbolic cache lives here across solves).
  IpmScratch* scratch() { return &scratch_; }
  /// Retain a batch-run result as the next warm-start seed (solve()'s tail).
  void commit(const IpmResult& result);

  bool has_warm_start() const { return has_last_; }
  const linalg::Vec& last_optimum() const { return last_opt_; }
  /// Drop warm-start state (keeps the symbolic cache, which depends only on
  /// structure).
  void reset_warm_start() { has_last_ = false; }

 private:
  linalg::SparseMatrix g_;
  linalg::Vec h_;
  linalg::Vec last_opt_, start_, slack_buf_;
  bool has_last_ = false;
  IpmScratch scratch_;
};

}  // namespace sora::solver
