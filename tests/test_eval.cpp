#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <functional>

#include "baselines/offline.hpp"
#include "core/cost.hpp"
#include "core/p1_model.hpp"
#include "core/single_resource.hpp"
#include "eval/montecarlo.hpp"
#include "eval/report.hpp"
#include "eval/scenarios.hpp"

namespace sora::eval {
namespace {

TEST(Scenarios, ReducedScaleDefaults) {
  // The test environment does not set REPRO_FULL.
  unsetenv("REPRO_FULL");
  const EvalScale scale = EvalScale::from_env();
  EXPECT_FALSE(scale.full);
  EXPECT_EQ(scale.num_tier2, 6u);
  EXPECT_EQ(scale.num_tier1, 12u);
}

TEST(Scenarios, FullScaleViaEnv) {
  setenv("REPRO_FULL", "1", 1);
  const EvalScale scale = EvalScale::from_env();
  EXPECT_TRUE(scale.full);
  EXPECT_EQ(scale.num_tier2, 18u);
  EXPECT_EQ(scale.num_tier1, 48u);
  EXPECT_EQ(scale.horizon_wikipedia, 500u);
  EXPECT_EQ(scale.horizon_worldcup, 600u);
  unsetenv("REPRO_FULL");
}

TEST(Scenarios, InstanceBuildsAndValidates) {
  EvalScale scale;  // reduced
  scale.horizon_wikipedia = 24;
  Scenario sc;
  sc.sla_k = 2;
  const auto inst = build_eval_instance(sc, scale);
  EXPECT_EQ(inst.num_tier2(), 6u);
  EXPECT_EQ(inst.num_tier1(), 12u);
  EXPECT_EQ(inst.horizon, 24u);
  const auto report = cloudnet::validate_instance(inst);
  EXPECT_TRUE(report.ok);
}

TEST(Scenarios, WorldCupUsesItsOwnHorizon) {
  EvalScale scale;
  scale.horizon_worldcup = 30;
  Scenario sc;
  sc.workload = Workload::kWorldCup;
  const auto inst = build_eval_instance(sc, scale);
  EXPECT_EQ(inst.horizon, 30u);
}

TEST(Scenarios, SameSeedSameInstance) {
  EvalScale scale;
  scale.horizon_wikipedia = 12;
  Scenario sc;
  const auto a = build_eval_instance(sc, scale);
  const auto b = build_eval_instance(sc, scale);
  for (std::size_t t = 0; t < a.horizon; ++t)
    EXPECT_DOUBLE_EQ(a.demand[t][0], b.demand[t][0]);
}

// Cross-check: on a 1x1 topology the multi-slot offline P1 LP must agree
// with the exact single-resource offline optimum computed independently.
TEST(CrossCheck, OfflineLpMatchesSingleResourceOracle) {
  util::Rng rng(31);
  const auto trace = cloudnet::wikipedia_like(16, rng);
  cloudnet::InstanceConfig cfg;
  cfg.num_tier2 = 1;
  cfg.num_tier1 = 1;
  cfg.sla_k = 1;
  cfg.reconfig_weight = 50.0;
  cfg.seed = 31;
  const auto inst = cloudnet::build_instance(cfg, trace);

  const auto offline = baselines::run_offline_optimum(inst);

  // Decompose: the 1x1 offline problem separates into independent x and y
  // single-resource problems (coverage couples them only through s <= both).
  core::SingleResourceInstance xsub, ysub;
  xsub.capacity = inst.tier2_capacity[0];
  xsub.reconfig = inst.tier2_reconfig[0];
  ysub.capacity = inst.edge_capacity[0];
  ysub.reconfig = inst.edge_reconfig[0];
  for (std::size_t t = 0; t < inst.horizon; ++t) {
    xsub.demand.push_back(inst.demand[t][0]);
    xsub.price.push_back(inst.tier2_price[t][0]);
    ysub.demand.push_back(inst.demand[t][0]);
    ysub.price.push_back(inst.edge_price[0]);
  }
  const double oracle =
      core::single_total_cost(xsub, core::single_offline(xsub)) +
      core::single_total_cost(ysub, core::single_offline(ysub));
  EXPECT_NEAR(offline.cost.total(), oracle,
              1e-4 * (1.0 + std::fabs(oracle)));
}

// ---------------------------------------------------------------------------
// Health-aware Monte Carlo sweep: per-seed SolveOutcome counters must be
// SURFACED in SeedStats, not silently averaged over degraded slots.

TEST(MonteCarlo, HealthAwareSweepSurfacesDegradedSeeds) {
  const Scenario scenario;
  EvalScale scale;
  scale.num_tier2 = 2;
  scale.num_tier1 = 3;
  scale.horizon_wikipedia = 4;

  std::atomic<int> calls{0};
  const SeedStats stats = sweep_seeds(
      scenario, scale, 6,
      std::function<SeedOutcome(const core::Instance&)>(
          [&](const core::Instance& inst) {
            const int call = calls.fetch_add(1);
            SeedOutcome out;
            out.value = static_cast<double>(inst.horizon);
            // Two seeds report fallbacks, one of them also degraded slots
            // and a failed repair.
            if (call < 2) out.fallback_slots = 3;
            if (call == 0) {
              out.degraded_slots = 2;
              out.failed_repairs = 1;
            }
            return out;
          }));

  EXPECT_EQ(stats.samples, 6u);
  EXPECT_EQ(stats.failures, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 4.0);
  EXPECT_EQ(stats.seeds_with_fallbacks, 2u);
  EXPECT_EQ(stats.seeds_with_degradation, 1u);
  EXPECT_EQ(stats.seeds_with_failed_repairs, 1u);
  EXPECT_EQ(stats.total_degraded_slots, 2u);
  EXPECT_EQ(stats.total_failed_repairs, 1u);
  EXPECT_FALSE(stats.all_healthy());
}

TEST(MonteCarlo, HealthyOutcomesAndDoubleOverloadReportAllHealthy) {
  const Scenario scenario;
  EvalScale scale;
  scale.num_tier2 = 2;
  scale.num_tier1 = 3;
  scale.horizon_wikipedia = 4;

  const SeedStats healthy = sweep_seeds(
      scenario, scale, 4,
      std::function<SeedOutcome(const core::Instance&)>(
          [](const core::Instance& inst) {
            SeedOutcome out;
            out.value = static_cast<double>(inst.horizon);
            return out;
          }));
  EXPECT_TRUE(healthy.all_healthy());
  EXPECT_EQ(healthy.samples, 4u);

  // The plain double overload cannot see solver health; its stats must stay
  // zeroed rather than inventing counters.
  const SeedStats plain =
      sweep_seeds(scenario, scale, 4, [](const core::Instance& inst) {
        return static_cast<double>(inst.horizon);
      });
  EXPECT_TRUE(plain.all_healthy());
  EXPECT_EQ(plain.seeds_with_fallbacks, 0u);
  EXPECT_DOUBLE_EQ(plain.mean, healthy.mean);
}

// ---------------------------------------------------------------------------
// Jain fairness index.

TEST(Fairness, JainIndexKnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);          // vacuously fair
  EXPECT_DOUBLE_EQ(jain_index({5.0, 5.0, 5.0, 5.0}), 1.0);  // perfectly even
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);  // 1/n hoarding
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42
  EXPECT_NEAR(jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0, 1e-12);
  // Scale invariance.
  EXPECT_NEAR(jain_index({10.0, 20.0, 30.0}), 36.0 / 42.0, 1e-12);
}

}  // namespace
}  // namespace sora::eval
