#include "core/p2_subproblem.hpp"

#include <algorithm>
#include <cmath>

#include "core/cost.hpp"
#include "core/regularizer.hpp"
#include "linalg/matrix.hpp"
#include "solver/simplex.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace sora::core {
namespace {

using linalg::Matrix;
using solver::kInf;

// Variable layout: [x_e (E) | y_e (E) | s_e (E)] (+ [z_e (E)] with F_1).
struct Layout {
  std::size_t num_edges;
  bool with_z;
  std::size_t x(std::size_t e) const { return e; }
  std::size_t y(std::size_t e) const { return num_edges + e; }
  std::size_t s(std::size_t e) const { return 2 * num_edges + e; }
  std::size_t z(std::size_t e) const {
    SORA_DCHECK(with_z);
    return 3 * num_edges + e;
  }
  std::size_t size() const { return (with_z ? 4 : 3) * num_edges; }
};

Layout layout_for(const Instance& inst) {
  return Layout{inst.num_edges(), inst.has_tier1()};
}

// The smooth convex P2 objective.
class P2Objective : public solver::ConvexObjective {
 public:
  P2Objective(const Instance& inst, const InputSeries& inputs, std::size_t t,
              const Allocation& prev, const RoaOptions& options)
      : inst_(inst), layout_(layout_for(inst)), options_(options) {
    const std::size_t num_i = inst.num_tier2();
    prev_totals_ = tier2_totals(inst, prev.x);
    prev_y_ = prev.y;
    x_weight_.resize(num_i);
    for (std::size_t i = 0; i < num_i; ++i) {
      const double eta =
          regularizer_eta(inst.tier2_capacity[i], options.eps);
      x_weight_[i] = eta > 0.0 ? inst.tier2_reconfig[i] / eta : 0.0;
    }
    y_weight_.resize(layout_.num_edges);
    for (std::size_t e = 0; e < layout_.num_edges; ++e) {
      const double eta =
          regularizer_eta(inst.edge_capacity[e], options.eps_prime);
      y_weight_[e] = eta > 0.0 ? inst.edge_reconfig[e] / eta : 0.0;
    }
    // Linear allocation prices.
    price_x_.resize(layout_.num_edges);
    price_y_.resize(layout_.num_edges);
    for (std::size_t e = 0; e < layout_.num_edges; ++e) {
      price_x_[e] = inputs.price(t, inst.edges[e].tier2);
      price_y_[e] = inst.edge_price[e];
    }
    // Tier-1 (F_1) term: entropic on the per-tier-1 aggregates Z_j.
    if (layout_.with_z) {
      prev_t1_totals_ = tier1_totals(inst, prev.z);
      z_weight_.resize(inst.num_tier1());
      for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
        const double eta =
            regularizer_eta(inst.tier1_capacity[j], options.eps);
        z_weight_[j] = eta > 0.0 ? inst.tier1_reconfig[j] / eta : 0.0;
      }
      price_z_.resize(layout_.num_edges);
      for (std::size_t e = 0; e < layout_.num_edges; ++e)
        price_z_[e] = inst.tier1_price[t][inst.edges[e].tier1];
    }
  }

  double value(const Vec& v) const override {
    double total = 0.0;
    for (std::size_t e = 0; e < layout_.num_edges; ++e) {
      total += price_x_[e] * v[layout_.x(e)];
      total += price_y_[e] * v[layout_.y(e)];
    }
    const Vec totals = x_totals(v);
    for (std::size_t i = 0; i < totals.size(); ++i)
      total += x_weight_[i] *
               entropic_value(totals[i], prev_totals_[i], options_.eps);
    for (std::size_t e = 0; e < layout_.num_edges; ++e)
      total += y_weight_[e] * entropic_value(v[layout_.y(e)], prev_y_[e],
                                             options_.eps_prime);
    if (layout_.with_z) {
      for (std::size_t e = 0; e < layout_.num_edges; ++e)
        total += price_z_[e] * v[layout_.z(e)];
      const Vec t1 = z_totals(v);
      for (std::size_t j = 0; j < t1.size(); ++j)
        total += z_weight_[j] *
                 entropic_value(t1[j], prev_t1_totals_[j], options_.eps);
    }
    return total;
  }

  Vec gradient(const Vec& v) const override {
    Vec g(layout_.size(), 0.0);
    const Vec totals = x_totals(v);
    for (std::size_t e = 0; e < layout_.num_edges; ++e) {
      const std::size_t i = inst_.edges[e].tier2;
      g[layout_.x(e)] =
          price_x_[e] + x_weight_[i] * entropic_gradient(
                                           totals[i], prev_totals_[i],
                                           options_.eps);
      g[layout_.y(e)] =
          price_y_[e] + y_weight_[e] * entropic_gradient(
                                           v[layout_.y(e)], prev_y_[e],
                                           options_.eps_prime);
      // s does not appear in the objective.
    }
    if (layout_.with_z) {
      const Vec t1 = z_totals(v);
      for (std::size_t e = 0; e < layout_.num_edges; ++e) {
        const std::size_t j = inst_.edges[e].tier1;
        g[layout_.z(e)] =
            price_z_[e] + z_weight_[j] * entropic_gradient(
                                             t1[j], prev_t1_totals_[j],
                                             options_.eps);
      }
    }
    return g;
  }

  Matrix hessian(const Vec& v) const override {
    Matrix h(layout_.size(), layout_.size(), 0.0);
    const Vec totals = x_totals(v);
    // x-block: (b_i/eta_i)/(X_i+eps) on every pair of edges sharing tier-2 i.
    for (std::size_t i = 0; i < inst_.num_tier2(); ++i) {
      const double curvature =
          x_weight_[i] * entropic_hessian(totals[i], options_.eps);
      const auto& ids = inst_.edges_of_tier2[i];
      for (const std::size_t e1 : ids)
        for (const std::size_t e2 : ids)
          h(layout_.x(e1), layout_.x(e2)) = curvature;
    }
    // y-block: diagonal.
    for (std::size_t e = 0; e < layout_.num_edges; ++e)
      h(layout_.y(e), layout_.y(e)) =
          y_weight_[e] * entropic_hessian(v[layout_.y(e)], options_.eps_prime);
    // z-block: like x but grouped by tier-1 cloud.
    if (layout_.with_z) {
      const Vec t1 = z_totals(v);
      for (std::size_t j = 0; j < inst_.num_tier1(); ++j) {
        const double curvature =
            z_weight_[j] * entropic_hessian(t1[j], options_.eps);
        const auto& ids = inst_.edges_of_tier1[j];
        for (const std::size_t e1 : ids)
          for (const std::size_t e2 : ids)
            h(layout_.z(e1), layout_.z(e2)) = curvature;
      }
    }
    return h;
  }

 private:
  Vec x_totals(const Vec& v) const {
    Vec totals(inst_.num_tier2(), 0.0);
    for (std::size_t e = 0; e < layout_.num_edges; ++e)
      totals[inst_.edges[e].tier2] += v[layout_.x(e)];
    return totals;
  }

  Vec z_totals(const Vec& v) const {
    Vec totals(inst_.num_tier1(), 0.0);
    for (std::size_t e = 0; e < layout_.num_edges; ++e)
      totals[inst_.edges[e].tier1] += v[layout_.z(e)];
    return totals;
  }

  const Instance& inst_;
  Layout layout_;
  RoaOptions options_;
  Vec prev_totals_, prev_y_, prev_t1_totals_;
  Vec x_weight_, y_weight_, z_weight_;
  Vec price_x_, price_y_, price_z_;
};

// Constraint polyhedron G v <= h for P2(t), with the rows of the paper's
// named constraints tracked for dual recovery (kNoRow where a conditional
// row was not generated).
inline constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);

struct P2Constraints {
  Matrix g;
  Vec h;
  std::vector<std::size_t> rho_row;    // per edge, (3a)
  std::vector<std::size_t> phi_row;    // per edge, (3b)
  std::vector<std::size_t> gamma_row;  // per tier-1, (3c)
  std::vector<std::size_t> delta_row;  // per tier-2, (3d)
  std::vector<std::size_t> theta_row;  // per edge, (3e)
  std::vector<std::size_t> sigma_row;  // per edge, z >= s
};

P2Constraints build_constraints(const Instance& inst, const InputSeries& inputs,
                                std::size_t t) {
  const Layout layout = layout_for(inst);
  const std::size_t E = layout.num_edges;
  const std::size_t I = inst.num_tier2();
  const std::size_t J = inst.num_tier1();

  double total_demand = 0.0;
  for (std::size_t j = 0; j < J; ++j) total_demand += inputs.lambda(t, j);

  // Count rows: 2E (3a,3b) + J (3c) + nonneg 3E + capacity I + E, plus the
  // conditional transfer rows (3d)/(3e).
  std::vector<std::pair<std::vector<std::pair<std::size_t, double>>, double>>
      rows;
  auto add_row = [&rows](std::vector<std::pair<std::size_t, double>> terms,
                         double rhs) {
    rows.push_back({std::move(terms), rhs});
    return rows.size() - 1;
  };

  P2Constraints out;
  out.rho_row.assign(E, kNoRow);
  out.phi_row.assign(E, kNoRow);
  out.gamma_row.assign(J, kNoRow);
  out.delta_row.assign(I, kNoRow);
  out.theta_row.assign(E, kNoRow);
  out.sigma_row.assign(E, kNoRow);

  for (std::size_t e = 0; e < E; ++e) {
    out.rho_row[e] =
        add_row({{layout.s(e), 1.0}, {layout.x(e), -1.0}}, 0.0);  // (3a)
    out.phi_row[e] =
        add_row({{layout.s(e), 1.0}, {layout.y(e), -1.0}}, 0.0);  // (3b)
  }
  for (std::size_t j = 0; j < J; ++j) {  // (3c): -sum s <= -lambda
    std::vector<std::pair<std::size_t, double>> terms;
    for (const std::size_t e : inst.edges_of_tier1[j])
      terms.push_back({layout.s(e), -1.0});
    out.gamma_row[j] = add_row(std::move(terms), -inputs.lambda(t, j));
  }
  // (3d): for each i, sum of x over edges NOT incident to i must cover
  // total demand minus C_i (when positive).
  for (std::size_t i = 0; i < I; ++i) {
    const double rhs = total_demand - inst.tier2_capacity[i];
    if (rhs <= 0.0) continue;
    std::vector<std::pair<std::size_t, double>> terms;
    for (std::size_t e = 0; e < E; ++e)
      if (inst.edges[e].tier2 != i) terms.push_back({layout.x(e), -1.0});
    out.delta_row[i] = add_row(std::move(terms), -rhs);
  }
  // (3e): for each edge e = (j, i), the other edges of j must cover
  // lambda_j - B_e (when positive).
  for (std::size_t e = 0; e < E; ++e) {
    const std::size_t j = inst.edges[e].tier1;
    const double rhs = inputs.lambda(t, j) - inst.edge_capacity[e];
    if (rhs <= 0.0) continue;
    std::vector<std::pair<std::size_t, double>> terms;
    for (const std::size_t e2 : inst.edges_of_tier1[j])
      if (e2 != e) terms.push_back({layout.y(e2), -1.0});
    out.theta_row[e] = add_row(std::move(terms), -rhs);
  }
  // Nonnegativity (3f) + capacities (1b)/(1c).
  for (std::size_t e = 0; e < E; ++e) {
    add_row({{layout.x(e), -1.0}}, 0.0);
    add_row({{layout.y(e), -1.0}}, 0.0);
    add_row({{layout.s(e), -1.0}}, 0.0);
    add_row({{layout.y(e), 1.0}}, inst.edge_capacity[e]);
  }
  for (std::size_t i = 0; i < I; ++i) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (const std::size_t e : inst.edges_of_tier2[i])
      terms.push_back({layout.x(e), 1.0});
    if (!terms.empty()) add_row(std::move(terms), inst.tier2_capacity[i]);
  }
  // Tier-1 term (F_1): s <= z, z >= 0, per-tier-1 capacity (1d).
  if (layout.with_z) {
    for (std::size_t e = 0; e < E; ++e) {
      out.sigma_row[e] =
          add_row({{layout.s(e), 1.0}, {layout.z(e), -1.0}}, 0.0);
      add_row({{layout.z(e), -1.0}}, 0.0);
    }
    for (std::size_t j = 0; j < J; ++j) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (const std::size_t e : inst.edges_of_tier1[j])
        terms.push_back({layout.z(e), 1.0});
      add_row(std::move(terms), inst.tier1_capacity[j]);
    }
  }

  out.g = Matrix(rows.size(), layout.size(), 0.0);
  out.h.assign(rows.size(), 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (const auto& [col, coeff] : rows[r].first) out.g(r, col) += coeff;
    out.h[r] = rows[r].second;
  }
  return out;
}

// Phase-I LP: maximize the margin m with G v + m <= h, 0 <= m <= 1.
Vec phase1_feasible_point(const Matrix& g, const Vec& h, std::size_t n) {
  solver::LpBuilder b;
  for (std::size_t j = 0; j < n; ++j) b.add_variable(-kInf, kInf, 0.0);
  const std::size_t margin = b.add_variable(0.0, 1.0, -1.0, "margin");
  for (std::size_t r = 0; r < g.rows(); ++r) {
    std::vector<solver::LinTerm> terms;
    for (std::size_t c = 0; c < n; ++c)
      if (g(r, c) != 0.0) terms.push_back({c, g(r, c)});
    terms.push_back({margin, 1.0});
    b.add_le(terms, h[r]);
  }
  const auto sol = solver::solve_simplex(b.build());
  SORA_CHECK_MSG(sol.ok(), "P2 phase-I LP failed");
  SORA_CHECK_MSG(sol.x[margin] > 1e-9,
                 "P2 subproblem has no strictly feasible point");
  Vec v(sol.x.begin(), sol.x.begin() + static_cast<std::ptrdiff_t>(n));
  return v;
}

}  // namespace

Vec p2_strictly_feasible_point(const Instance& inst, const InputSeries& inputs,
                               std::size_t t) {
  const Layout layout = layout_for(inst);
  Vec v(layout.size(), 0.0);
  // Even split inflated by small margins: s covers demand strictly, x, y
  // (and z) strictly dominate s, capacities keep 25% headroom by
  // provisioning.
  for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
    const auto& ids = inst.edges_of_tier1[j];
    const double split =
        inputs.lambda(t, j) / static_cast<double>(ids.size());
    for (const std::size_t e : ids) {
      v[layout.s(e)] = split * 1.01 + 1e-7;
      v[layout.x(e)] = split * 1.02 + 2e-7;
      v[layout.y(e)] = split * 1.02 + 2e-7;
      if (layout.with_z) v[layout.z(e)] = split * 1.02 + 2e-7;
    }
  }

  const P2Constraints cons = build_constraints(inst, inputs, t);
  const Vec gx = cons.g.multiply(v);
  double min_slack = kInf;
  for (std::size_t r = 0; r < cons.h.size(); ++r)
    min_slack = std::min(min_slack, cons.h[r] - gx[r]);
  if (min_slack > 0.0) return v;

  SORA_LOG_DEBUG << "p2: even-split start infeasible (slack " << min_slack
                 << "); falling back to phase-I LP";
  return phase1_feasible_point(cons.g, cons.h, layout.size());
}

P2Solution solve_p2(const Instance& inst, const InputSeries& inputs,
                    std::size_t t, const Allocation& prev,
                    const RoaOptions& options) {
  SORA_CHECK(t < inst.horizon);
  SORA_CHECK(prev.x.size() == inst.num_edges());
  const Layout layout = layout_for(inst);

  const P2Objective objective(inst, inputs, t, prev, options);
  const P2Constraints cons = build_constraints(inst, inputs, t);
  const Vec start = p2_strictly_feasible_point(inst, inputs, t);

  const auto result =
      solver::solve_barrier(objective, cons.g, cons.h, start, options.ipm);
  SORA_CHECK_MSG(result.ok(),
                 "P2 barrier solve failed at t=" + std::to_string(t) + ": " +
                     result.detail);

  P2Solution out;
  out.alloc = Allocation::zeros(layout.num_edges);
  out.s.assign(layout.num_edges, 0.0);
  for (std::size_t e = 0; e < layout.num_edges; ++e) {
    out.alloc.x[e] = std::max(0.0, result.x[layout.x(e)]);
    out.alloc.y[e] = std::max(0.0, result.x[layout.y(e)]);
    if (layout.with_z) out.alloc.z[e] = std::max(0.0, result.x[layout.z(e)]);
    out.s[e] = std::max(0.0, result.x[layout.s(e)]);
  }
  out.objective = result.objective;
  out.newton_steps = result.newton_steps;

  // Recover the named KKT multipliers for the certificate machinery.
  const auto pick = [&result](const std::vector<std::size_t>& row_of,
                              std::size_t count) {
    Vec duals(count, 0.0);
    for (std::size_t k = 0; k < count; ++k)
      if (row_of[k] != kNoRow) duals[k] = result.ineq_dual[row_of[k]];
    return duals;
  };
  out.rho = pick(cons.rho_row, layout.num_edges);
  out.phi = pick(cons.phi_row, layout.num_edges);
  out.gamma = pick(cons.gamma_row, inst.num_tier1());
  out.delta = pick(cons.delta_row, inst.num_tier2());
  out.theta = pick(cons.theta_row, layout.num_edges);
  out.sigma = pick(cons.sigma_row, layout.num_edges);
  return out;
}

}  // namespace sora::core
