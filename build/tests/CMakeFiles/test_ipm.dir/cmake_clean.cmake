file(REMOVE_RECURSE
  "CMakeFiles/test_ipm.dir/test_ipm.cpp.o"
  "CMakeFiles/test_ipm.dir/test_ipm.cpp.o.d"
  "test_ipm"
  "test_ipm.pdb"
  "test_ipm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
