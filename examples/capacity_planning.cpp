// Scenario example: capacity planning with the service-replay simulator.
// Sweeps the provisioning margin (how much headroom capacities have over the
// peak workload) and shows the operator's tradeoff: a tighter margin lowers
// the cost of the online policy but leaves less room for the regularized
// hold-level behaviour; replay metrics (utilization, over-provisioning)
// quantify both sides. Noisy planning is included to show when drops appear.
//
//   $ ./examples/capacity_planning [--hours N] [--error PCT]
#include <cstdio>
#include <iostream>

#include "cloudnet/instance.hpp"
#include "cloudnet/workload.hpp"
#include "core/predictive.hpp"
#include "core/roa.hpp"
#include "eval/replay.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace sora;
  const auto opts = util::Options::parse(argc, argv, {"hours", "error"});
  const std::size_t hours =
      static_cast<std::size_t>(opts.get_int("hours", 60));
  const double error = opts.get_double("error", 0.10);

  std::printf("capacity planning sweep (%zu h, %0.0f%% forecast noise)\n\n",
              hours, 100.0 * error);
  std::printf("%8s | %12s %9s %9s | %12s %8s %10s\n", "margin",
              "ROA cost", "util(x)", "overprov", "RHC(noisy)", "drop%",
              "SLA-slots");

  for (const double margin : {1.10, 1.25, 1.50, 2.00}) {
    util::Rng rng(11);
    const auto trace = cloudnet::wikipedia_like(hours, rng);
    cloudnet::InstanceConfig cfg;
    cfg.num_tier2 = 4;
    cfg.num_tier1 = 8;
    cfg.sla_k = 2;
    cfg.capacity_margin = margin;
    cfg.reconfig_weight = 300.0;
    cfg.seed = 11;
    const core::Instance inst = cloudnet::build_instance(cfg, trace);

    const auto roa = core::run_roa(inst);
    const auto roa_replay = eval::replay_trajectory(inst, roa.trajectory);

    core::ControlOptions control;
    control.window = 3;
    control.prediction = {error, 77};
    const auto rhc = core::run_rhc(inst, control);
    const auto rhc_replay = eval::replay_trajectory(inst, rhc.trajectory);

    std::printf("%8.2f | %12.1f %9.3f %9.3f | %12.1f %7.3f%% %10zu\n",
                margin, roa.cost.total(),
                roa_replay.mean_tier2_utilization,
                roa_replay.overprovision_factor, rhc.cost.total(),
                100.0 * rhc_replay.drop_rate, rhc_replay.violation_slots);
  }

  std::printf(
      "\nReading: higher margins cost more head-room but let the online\n"
      "policy hold capacity through dips (lower utilization, higher\n"
      "over-provisioning). The noisy receding-horizon planner never drops\n"
      "demand because each slot is repaired against the true workload.\n");
  return 0;
}
