#include "core/normalization.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sora::core {

NormalizedInstance normalize_instance(const Instance& inst) {
  NormalizedInstance out;
  out.instance = inst;
  double scale = 0.0;
  for (double c : inst.tier2_capacity) scale = std::max(scale, c);
  SORA_CHECK_MSG(scale > 0.0, "instance has no positive capacity");
  out.scale = scale;

  const double inv = 1.0 / scale;
  for (auto& row : out.instance.demand)
    for (double& v : row) v *= inv;
  for (double& v : out.instance.tier2_capacity) v *= inv;
  for (double& v : out.instance.edge_capacity) v *= inv;
  for (double& v : out.instance.tier1_capacity) v *= inv;
  return out;
}

Trajectory denormalize(const NormalizedInstance& norm,
                       const Trajectory& scaled) {
  Trajectory out = scaled;
  for (auto& slot : out.slots) {
    linalg::scale(slot.x, norm.scale);
    linalg::scale(slot.y, norm.scale);
    linalg::scale(slot.z, norm.scale);
  }
  return out;
}

}  // namespace sora::core
