// ASCII table printer: the benchmark binaries print paper-style tables and
// figure series as aligned plain-text tables on stdout.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sora::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Formats each value with the given printf format (default "%.4g").
  void add_numeric_row(const std::string& label,
                       const std::vector<double>& values,
                       const char* fmt = "%.4g");

  void print(std::ostream& os) const;

  /// Format one double with the given printf format.
  static std::string fmt(double v, const char* f = "%.4g");

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sora::util
