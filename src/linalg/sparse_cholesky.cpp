#include "linalg/sparse_cholesky.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace sora::linalg {

SymSparse SymSparse::from_lower_triplets(std::size_t n,
                                         std::vector<Triplet> triplets) {
  for (Triplet& t : triplets) {
    SORA_CHECK(t.row < n && t.col < n);
    if (t.col > t.row) std::swap(t.row, t.col);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SymSparse m;
  m.n = n;
  m.row_ptr.assign(n + 1, 0);
  m.cols.reserve(triplets.size());
  m.values.reserve(triplets.size());
  std::size_t k = 0;
  for (std::size_t r = 0; r < n; ++r) {
    m.row_ptr[r] = m.cols.size();
    while (k < triplets.size() && triplets[k].row == r) {
      const std::size_t c = triplets[k].col;
      double v = 0.0;
      while (k < triplets.size() && triplets[k].row == r &&
             triplets[k].col == c) {
        v += triplets[k].value;
        ++k;
      }
      m.cols.push_back(c);
      m.values.push_back(v);
    }
  }
  m.row_ptr[n] = m.cols.size();
  return m;
}

SymSparse SymSparse::from_dense_lower(const Matrix& a, double drop_tol) {
  SORA_CHECK(a.rows() == a.cols());
  SymSparse m;
  m.n = a.rows();
  m.row_ptr.assign(m.n + 1, 0);
  for (std::size_t r = 0; r < m.n; ++r) {
    m.row_ptr[r] = m.cols.size();
    const double* row = a.row_ptr(r);
    for (std::size_t c = 0; c <= r; ++c) {
      if (std::fabs(row[c]) > drop_tol) {
        m.cols.push_back(c);
        m.values.push_back(row[c]);
      }
    }
  }
  m.row_ptr[m.n] = m.cols.size();
  return m;
}

double SymSparse::density() const {
  if (n == 0) return 0.0;
  std::size_t diag = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t end = row_ptr[r + 1];
    if (end > row_ptr[r] && cols[end - 1] == r) ++diag;
  }
  const double full = 2.0 * static_cast<double>(nonzeros()) -
                      static_cast<double>(diag);
  return full / (static_cast<double>(n) * static_cast<double>(n));
}

Matrix SymSparse::to_dense() const {
  Matrix a(n, n, 0.0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      a(r, cols[k]) = values[k];
      a(cols[k], r) = values[k];
    }
  return a;
}

namespace {

// Undirected adjacency (CSR, no self-loops) of the symmetric pattern.
struct Adjacency {
  std::vector<std::size_t> ptr, nbr;
  std::size_t degree(std::size_t v) const { return ptr[v + 1] - ptr[v]; }
};

Adjacency build_adjacency(const SymSparse& a) {
  const std::size_t n = a.n;
  Adjacency adj;
  adj.ptr.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const std::size_t c = a.cols[k];
      if (c == r) continue;
      ++adj.ptr[r + 1];
      ++adj.ptr[c + 1];
    }
  for (std::size_t v = 0; v < n; ++v) adj.ptr[v + 1] += adj.ptr[v];
  adj.nbr.resize(adj.ptr[n]);
  std::vector<std::size_t> fill(adj.ptr.begin(), adj.ptr.end() - 1);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      const std::size_t c = a.cols[k];
      if (c == r) continue;
      adj.nbr[fill[r]++] = c;
      adj.nbr[fill[c]++] = r;
    }
  return adj;
}

// BFS from `root` over unvisited nodes, appending the traversal to `order`
// with neighbors taken in ascending-degree order (ties by index, so the
// ordering is deterministic). Returns the index in `order` where the last
// BFS level starts.
std::size_t bfs_component(const Adjacency& adj, std::size_t root,
                          std::vector<char>& visited,
                          std::vector<std::size_t>& order,
                          std::vector<std::size_t>& scratch) {
  const std::size_t begin = order.size();
  visited[root] = 1;
  order.push_back(root);
  std::size_t level_begin = begin, head = begin;
  while (head < order.size()) {
    const std::size_t level_end = order.size();
    level_begin = head;
    for (; head < level_end; ++head) {
      const std::size_t v = order[head];
      scratch.clear();
      for (std::size_t k = adj.ptr[v]; k < adj.ptr[v + 1]; ++k) {
        const std::size_t w = adj.nbr[k];
        if (!visited[w]) {
          visited[w] = 1;
          scratch.push_back(w);
        }
      }
      std::sort(scratch.begin(), scratch.end(),
                [&adj](std::size_t x, std::size_t y) {
                  const std::size_t dx = adj.degree(x), dy = adj.degree(y);
                  return dx != dy ? dx < dy : x < y;
                });
      order.insert(order.end(), scratch.begin(), scratch.end());
    }
  }
  return level_begin;
}

}  // namespace

std::vector<std::size_t> reverse_cuthill_mckee(const SymSparse& a) {
  const std::size_t n = a.n;
  const Adjacency adj = build_adjacency(a);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<char> visited(n, 0);
  std::vector<std::size_t> scratch;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    // Component root: the minimum-degree unvisited node reachable choice is
    // refined toward a pseudo-peripheral node with one extra BFS (George &
    // Liu): BFS, take a min-degree node of the last level, restart there.
    std::size_t root = seed;
    {
      std::vector<char> probe(visited);
      std::vector<std::size_t> probe_order;
      const std::size_t last = bfs_component(adj, root, probe, probe_order,
                                             scratch);
      std::size_t best = probe_order[last];
      for (std::size_t i = last; i < probe_order.size(); ++i)
        if (adj.degree(probe_order[i]) < adj.degree(best))
          best = probe_order[i];
      root = best;
    }
    bfs_component(adj, root, visited, order, scratch);
  }
  std::reverse(order.begin(), order.end());
  return order;
}

void SparseCholesky::analyze(const SymSparse& a) {
  const std::size_t n = a.n;
  n_ = n;
  factored_ = false;
  shift_ = 0.0;

  perm_ = reverse_cuthill_mckee(a);
  iperm_.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) iperm_[perm_[k]] = k;

  // Permute the pattern: original entry (r, c) lands at (max, min) of the
  // permuted indices; entry_map_ lets factor() gather values straight into
  // the permuted layout.
  struct PermEntry {
    std::size_t row, col, src;
  };
  std::vector<PermEntry> entries;
  entries.reserve(a.nonzeros());
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = a.row_ptr[r]; k < a.row_ptr[r + 1]; ++k) {
      std::size_t pr = iperm_[r], pc = iperm_[a.cols[k]];
      if (pc > pr) std::swap(pr, pc);
      entries.push_back({pr, pc, k});
    }
  std::sort(entries.begin(), entries.end(),
            [](const PermEntry& x, const PermEntry& y) {
              return x.row != y.row ? x.row < y.row : x.col < y.col;
            });
  ap_ptr_.assign(n + 1, 0);
  ap_cols_.resize(entries.size());
  ap_vals_.assign(entries.size(), 0.0);
  entry_map_.resize(entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    ++ap_ptr_[entries[k].row + 1];
    ap_cols_[k] = entries[k].col;
    entry_map_[entries[k].src] = k;
  }
  for (std::size_t r = 0; r < n; ++r) ap_ptr_[r + 1] += ap_ptr_[r];

  // Elimination tree of the permuted matrix (Liu's algorithm with path
  // compression through `ancestor`).
  parent_.assign(n, n);
  std::vector<std::size_t> ancestor(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t p = ap_ptr_[k]; p < ap_ptr_[k + 1]; ++p) {
      std::size_t i = ap_cols_[p];
      while (i != n && i < k) {
        const std::size_t next = ancestor[i];
        ancestor[i] = k;
        if (next == n) parent_[i] = k;
        i = next;
      }
    }
  }

  // Column counts of L via one symbolic sweep of ereach, then the fixed
  // row-index array li_ via a second sweep in the exact order the numeric
  // factorization will revisit (so value slots line up with head_ pointers).
  mark_.assign(n, 0);
  stack_.resize(n);
  pattern_.resize(n);
  std::vector<std::size_t> colcount(n, 1);  // the diagonal of every column
  const auto ereach = [this](std::size_t k, std::size_t stamp) {
    std::size_t top = n_;
    mark_[k] = stamp;
    for (std::size_t p = ap_ptr_[k]; p < ap_ptr_[k + 1]; ++p) {
      std::size_t i = ap_cols_[p];
      if (i >= k) continue;
      std::size_t len = 0;
      while (mark_[i] != stamp) {
        stack_[len++] = i;
        mark_[i] = stamp;
        i = parent_[i];
      }
      while (len > 0) pattern_[--top] = stack_[--len];
    }
    return top;
  };

  std::size_t stamp = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t top = ereach(k, ++stamp);
    for (std::size_t t = top; t < n; ++t) ++colcount[pattern_[t]];
  }
  lp_.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) lp_[j + 1] = lp_[j] + colcount[j];
  li_.assign(lp_[n], 0);
  lx_.assign(lp_[n], 0.0);
  head_.assign(n, 0);
  for (std::size_t j = 0; j < n; ++j) head_[j] = lp_[j];
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t top = ereach(k, ++stamp);
    for (std::size_t t = top; t < n; ++t) li_[head_[pattern_[t]]++] = k;
    li_[head_[k]++] = k;  // the diagonal, stored first within column k
  }

  xwork_.assign(n, 0.0);

  // Level-scheduled parallel numeric kernel: only worth its extra index
  // arrays (and only built) at or above the dimension threshold.
  threaded_ = n >= threaded_min_dim_;
  if (!threaded_) {
    level_ptr_.clear();
    level_cols_.clear();
    ac_ptr_.clear();
    ac_rows_.clear();
    ac_src_.clear();
    rl_ptr_.clear();
    rl_col_.clear();
    rl_off_.clear();
    return;
  }

  // Elimination-tree heights (children precede parents, so one ascending
  // sweep suffices), then columns bucketed by height — within a level in
  // ascending column order, so the per-column work order is deterministic.
  std::vector<std::size_t> height(n, 0);
  std::size_t max_h = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t p = parent_[j];
    if (p != n) height[p] = std::max(height[p], height[j] + 1);
    max_h = std::max(max_h, height[j]);
  }
  level_ptr_.assign(max_h + 2, 0);
  for (std::size_t j = 0; j < n; ++j) ++level_ptr_[height[j] + 1];
  for (std::size_t l = 0; l + 1 < level_ptr_.size(); ++l)
    level_ptr_[l + 1] += level_ptr_[l];
  level_cols_.resize(n);
  {
    std::vector<std::size_t> cursor(level_ptr_.begin(), level_ptr_.end() - 1);
    for (std::size_t j = 0; j < n; ++j) level_cols_[cursor[height[j]]++] = j;
  }

  // Column view of the permuted input (lower CSC): rows ascend within each
  // column because the CSR sweep visits rows in order.
  ac_ptr_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t p = ap_ptr_[r]; p < ap_ptr_[r + 1]; ++p)
      ++ac_ptr_[ap_cols_[p] + 1];
  for (std::size_t j = 0; j < n; ++j) ac_ptr_[j + 1] += ac_ptr_[j];
  ac_rows_.resize(ap_cols_.size());
  ac_src_.resize(ap_cols_.size());
  {
    std::vector<std::size_t> cursor(ac_ptr_.begin(), ac_ptr_.end() - 1);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t p = ap_ptr_[r]; p < ap_ptr_[r + 1]; ++p) {
        const std::size_t slot = cursor[ap_cols_[p]]++;
        ac_rows_[slot] = r;
        ac_src_[slot] = p;
      }
  }

  // Row structure of L minus the diagonal: for row j, the update sources
  // i < j with L(j, i) != 0 plus the offset of that entry inside column i,
  // so the left-looking sweep starts its saxpy exactly at row j.
  rl_ptr_.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t p = lp_[j] + 1; p < lp_[j + 1]; ++p)
      ++rl_ptr_[li_[p] + 1];
  for (std::size_t j = 0; j < n; ++j) rl_ptr_[j + 1] += rl_ptr_[j];
  rl_col_.resize(li_.size() - n);
  rl_off_.resize(li_.size() - n);
  {
    std::vector<std::size_t> cursor(rl_ptr_.begin(), rl_ptr_.end() - 1);
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t p = lp_[j] + 1; p < lp_[j + 1]; ++p) {
        const std::size_t slot = cursor[li_[p]]++;
        rl_col_[slot] = j;
        rl_off_[slot] = p;
      }
  }
}

bool SparseCholesky::factor(const SymSparse& a, double shift) {
  SORA_CHECK_MSG(analyzed() && a.n == n_ &&
                     a.nonzeros() == entry_map_.size(),
                 "SparseCholesky::factor: pattern does not match analyze()");
  factored_ = false;
  for (std::size_t k = 0; k < entry_map_.size(); ++k)
    ap_vals_[entry_map_[k]] = a.values[k];
  const bool ok = threaded_ ? factor_threaded(shift) : factor_serial(shift);
  if (ok) {
    factored_ = true;
    shift_ = shift;
  }
  return ok;
}

bool SparseCholesky::factor_serial(double shift) {
  for (std::size_t j = 0; j < n_; ++j) head_[j] = lp_[j];

  // Up-looking factorization (CSparse cs_chol over the fixed pattern): row
  // k of L solves L(0:k,0:k) l = A(0:k,k) by walking the elimination-tree
  // reach in topological order, accumulating in the dense xwork_ row.
  std::size_t stamp = 0;
  const auto ereach = [this](std::size_t k, std::size_t s) {
    std::size_t top = n_;
    mark_[k] = s;
    for (std::size_t p = ap_ptr_[k]; p < ap_ptr_[k + 1]; ++p) {
      std::size_t i = ap_cols_[p];
      if (i >= k) continue;
      std::size_t len = 0;
      while (mark_[i] != s) {
        stack_[len++] = i;
        mark_[i] = s;
        i = parent_[i];
      }
      while (len > 0) pattern_[--top] = stack_[--len];
    }
    return top;
  };
  // Distinct stamps from the symbolic phase: restart the counter but clear
  // marks first so stale symbolic stamps cannot collide.
  std::fill(mark_.begin(), mark_.end(), 0);

  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t top = ereach(k, ++stamp);
    double d = shift;
    for (std::size_t p = ap_ptr_[k]; p < ap_ptr_[k + 1]; ++p) {
      const std::size_t i = ap_cols_[p];
      if (i == k)
        d += ap_vals_[p];
      else
        xwork_[i] = ap_vals_[p];
    }
    for (std::size_t t = top; t < n_; ++t) {
      const std::size_t i = pattern_[t];
      const double lki = xwork_[i] / lx_[lp_[i]];
      xwork_[i] = 0.0;
      const std::size_t pend = head_[i];
      for (std::size_t p = lp_[i] + 1; p < pend; ++p)
        xwork_[li_[p]] -= lx_[p] * lki;
      d -= lki * lki;
      SORA_DCHECK(li_[head_[i]] == k);
      lx_[head_[i]++] = lki;
    }
    if (!(d > 0.0) || !std::isfinite(d)) {
      // Clear any pending xwork entries of later rows before bailing.
      std::fill(xwork_.begin(), xwork_.end(), 0.0);
      return false;
    }
    SORA_DCHECK(li_[head_[k]] == k);
    lx_[head_[k]++] = std::sqrt(d);
  }
  return true;
}

// Level-scheduled left-looking numeric factorization: for each elimination-
// tree level (leaves upward), every column in the level factors on the
// shared pool, with parallel_for's completion acting as the level barrier.
// Column j is updated only by columns i with L(j, i) != 0 — elimination-tree
// descendants of j, which sit at strictly lower height — so all of a
// column's inputs are finalized before its level starts. Each column's
// arithmetic is a fixed sequential order (sources in ascending i), hence the
// factor does not depend on the thread count. Per-thread dense accumulators
// rely on the every-column-clears-what-it-touched invariant (the touched set
// is always a subset of column j's pattern in L).
bool SparseCholesky::factor_threaded(double shift) {
  std::atomic<bool> failed{false};
  const auto column = [this, shift, &failed](std::size_t j, Vec& x) {
    for (std::size_t p = ac_ptr_[j]; p < ac_ptr_[j + 1]; ++p)
      x[ac_rows_[p]] = ap_vals_[ac_src_[p]];
    x[j] += shift;
    for (std::size_t q = rl_ptr_[j]; q < rl_ptr_[j + 1]; ++q) {
      const std::size_t i = rl_col_[q];
      const std::size_t p0 = rl_off_[q];  // li_[p0] == j inside column i
      const double lji = lx_[p0];
      for (std::size_t p = p0; p < lp_[i + 1]; ++p)
        x[li_[p]] -= lx_[p] * lji;
    }
    const double d = x[j];
    x[j] = 0.0;
    if (!(d > 0.0) || !std::isfinite(d)) {
      for (std::size_t p = lp_[j] + 1; p < lp_[j + 1]; ++p) x[li_[p]] = 0.0;
      failed.store(true, std::memory_order_relaxed);
      return;
    }
    const double ljj = std::sqrt(d);
    lx_[lp_[j]] = ljj;
    for (std::size_t p = lp_[j] + 1; p < lp_[j + 1]; ++p) {
      const std::size_t r = li_[p];
      lx_[p] = x[r] / ljj;
      x[r] = 0.0;
    }
  };
  for (std::size_t l = 0; l + 1 < level_ptr_.size(); ++l) {
    util::parallel_for(
        level_ptr_[l], level_ptr_[l + 1],
        [this, &column, &failed](std::size_t k) {
          if (failed.load(std::memory_order_relaxed)) return;
          thread_local Vec x;
          if (x.size() < n_) x.assign(n_, 0.0);
          column(level_cols_[k], x);
        },
        8, util::ForSchedule::kGuided);
    if (failed.load(std::memory_order_relaxed)) return false;
  }
  return true;
}

double SparseCholesky::factor_regularized(const SymSparse& a,
                                          double initial_shift,
                                          double max_shift) {
  for (const double v : a.values)
    SORA_CHECK_MSG(std::isfinite(v),
                   "non-finite entry in SparseCholesky input");
  if (factor(a, 0.0)) return 0.0;
  for (double shift = initial_shift; shift <= max_shift; shift *= 10.0)
    if (factor(a, shift)) return shift;
  SORA_CHECK_MSG(false,
                 "SparseCholesky failed even with maximum diagonal shift");
}

void SparseCholesky::solve_in_place(Vec& x) const {
  SORA_CHECK_MSG(factored_, "SparseCholesky::solve before factor()");
  SORA_CHECK(x.size() == n_);
  // Work in a local permuted copy; the factor scratch xwork_ must stay
  // zeroed between factor() calls, so it is not reused here.
  thread_local Vec b;
  b.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) b[k] = x[perm_[k]];
  // Forward: L y = b, column sweep.
  for (std::size_t j = 0; j < n_; ++j) {
    const double yj = b[j] / lx_[lp_[j]];
    b[j] = yj;
    for (std::size_t p = lp_[j] + 1; p < lp_[j + 1]; ++p)
      b[li_[p]] -= lx_[p] * yj;
  }
  // Backward: L^T z = y, dot-product sweep.
  for (std::size_t jj = n_; jj-- > 0;) {
    double v = b[jj];
    for (std::size_t p = lp_[jj] + 1; p < lp_[jj + 1]; ++p)
      v -= lx_[p] * b[li_[p]];
    b[jj] = v / lx_[lp_[jj]];
  }
  for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = b[k];
}

Vec SparseCholesky::solve(const Vec& b) const {
  Vec x = b;
  solve_in_place(x);
  return x;
}

}  // namespace sora::linalg
