file(REMOVE_RECURSE
  "CMakeFiles/test_ntier_predictive.dir/test_ntier_predictive.cpp.o"
  "CMakeFiles/test_ntier_predictive.dir/test_ntier_predictive.cpp.o.d"
  "test_ntier_predictive"
  "test_ntier_predictive.pdb"
  "test_ntier_predictive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntier_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
