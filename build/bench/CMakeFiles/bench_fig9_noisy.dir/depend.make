# Empty dependencies file for bench_fig9_noisy.
# This may be replaced when dependencies are built.
