
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/certificate.cpp" "src/core/CMakeFiles/sora_core.dir/certificate.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/certificate.cpp.o.d"
  "/root/repo/src/core/competitive.cpp" "src/core/CMakeFiles/sora_core.dir/competitive.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/competitive.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/sora_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/normalization.cpp" "src/core/CMakeFiles/sora_core.dir/normalization.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/normalization.cpp.o.d"
  "/root/repo/src/core/ntier.cpp" "src/core/CMakeFiles/sora_core.dir/ntier.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/ntier.cpp.o.d"
  "/root/repo/src/core/p1_model.cpp" "src/core/CMakeFiles/sora_core.dir/p1_model.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/p1_model.cpp.o.d"
  "/root/repo/src/core/p2_subproblem.cpp" "src/core/CMakeFiles/sora_core.dir/p2_subproblem.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/p2_subproblem.cpp.o.d"
  "/root/repo/src/core/predictive.cpp" "src/core/CMakeFiles/sora_core.dir/predictive.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/predictive.cpp.o.d"
  "/root/repo/src/core/regularizer.cpp" "src/core/CMakeFiles/sora_core.dir/regularizer.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/regularizer.cpp.o.d"
  "/root/repo/src/core/roa.cpp" "src/core/CMakeFiles/sora_core.dir/roa.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/roa.cpp.o.d"
  "/root/repo/src/core/single_resource.cpp" "src/core/CMakeFiles/sora_core.dir/single_resource.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/single_resource.cpp.o.d"
  "/root/repo/src/core/ski_rental.cpp" "src/core/CMakeFiles/sora_core.dir/ski_rental.cpp.o" "gcc" "src/core/CMakeFiles/sora_core.dir/ski_rental.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloudnet/CMakeFiles/sora_cloudnet.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/sora_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/sora_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sora_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
