#include "testing/differential.hpp"

#include <cmath>
#include <sstream>

#include "core/cost.hpp"
#include "core/p1_model.hpp"
#include "core/roa.hpp"
#include "testing/invariants.hpp"
#include "testing/repro.hpp"
#include "util/check.hpp"

namespace sora::testing {
namespace {

using cloudnet::Instance;
using core::RoaOptions;
using core::RoaRun;
using linalg::max_abs_diff;
using linalg::Vec;

struct Backend {
  const char* name;
  RoaOptions options;
};

std::vector<Backend> roa_backends(const DiffOptions& diff) {
  RoaOptions dense;
  dense.use_sparse = false;
  RoaOptions sparse_cold;
  sparse_cold.warm_start = false;
  RoaOptions sparse_warm;
  for (RoaOptions* o : {&dense, &sparse_cold, &sparse_warm})
    o->ipm.tol = diff.ipm_tol;
  return {{"dense", dense},
          {"sparse-cold", sparse_cold},
          {"sparse-warm", sparse_warm}};
}

class Recorder {
 public:
  Recorder(DiffReport& report, const Instance& inst, const std::string& label,
           const DiffOptions& options)
      : report_(report), inst_(inst), label_(label), options_(options) {}

  void mismatch(const std::string& what, double magnitude) {
    DiffMismatch m{what, magnitude, ""};
    if (options_.dump_on_failure) {
      const std::string path = default_repro_path(label_);
      std::ostringstream context;
      context << "label: " << label_ << "\nmismatch: " << what
              << "\nmagnitude: " << magnitude;
      // An unwritable dump location must not mask the mismatch itself.
      try {
        dump_instance(inst_, path, context.str());
        m.repro_path = path;
      } catch (const util::CheckError&) {
        m.repro_path = "";
      }
    }
    report_.mismatches.push_back(std::move(m));
  }

  /// Record when `magnitude` exceeds `tol`.
  void require(const std::string& what, double magnitude, double tol) {
    if (magnitude > tol) mismatch(what, magnitude);
  }

 private:
  DiffReport& report_;
  const Instance& inst_;
  std::string label_;
  DiffOptions options_;
};

}  // namespace

std::string DiffReport::summary() const {
  std::ostringstream os;
  for (const auto& m : mismatches) {
    os << m.what << ": " << m.magnitude;
    if (!m.repro_path.empty()) os << " (repro: " << m.repro_path << ")";
    os << '\n';
  }
  return os.str();
}

DiffReport differential_roa(const Instance& inst, const std::string& label,
                            const DiffOptions& options) {
  DiffReport report;
  Recorder rec(report, inst, label, options);

  const std::vector<Backend> backends = roa_backends(options);
  std::vector<RoaRun> runs;
  runs.reserve(backends.size());
  for (const Backend& b : backends) {
    runs.push_back(core::run_roa(inst, b.options));
    // Every backend's trajectory must stand on its own: P1-feasible.
    const InvariantReport inv = check_trajectory(inst, runs.back().trajectory);
    if (!inv.ok()) {
      rec.mismatch(std::string(b.name) + " invariants: " +
                       inv.violations.front().invariant,
                   inv.violations.front().magnitude);
    }
  }

  // Pairwise agreement, always against the dense reference (index 0).
  for (std::size_t k = 1; k < runs.size(); ++k) {
    const std::string pair =
        std::string(backends[0].name) + "-vs-" + backends[k].name;
    for (std::size_t t = 0; t < inst.horizon; ++t) {
      const auto& a = runs[0].trajectory.slots[t];
      const auto& b = runs[k].trajectory.slots[t];
      rec.require(pair + " x@t" + std::to_string(t), max_abs_diff(a.x, b.x),
                  options.primal_tol);
      rec.require(pair + " y@t" + std::to_string(t), max_abs_diff(a.y, b.y),
                  options.primal_tol);
      if (inst.has_tier1())
        rec.require(pair + " z@t" + std::to_string(t), max_abs_diff(a.z, b.z),
                    options.primal_tol);
    }
    const double ca = runs[0].cost.total();
    const double cb = runs[k].cost.total();
    rec.require(pair + " cost", std::fabs(ca - cb) / (1.0 + std::fabs(ca)),
                options.cost_tol);
  }

  if (options.include_decomposed) {
    RoaOptions dec_opt;
    dec_opt.ipm.tol = options.ipm_tol;
    dec_opt.decomposition.mode = core::DecompositionOptions::Mode::kForce;
    // Tight consensus stopping for agreement checks (the production default
    // is looser; restoration covers feasibility there).
    dec_opt.decomposition.eps_rel = 1e-5;
    dec_opt.decomposition.eps_abs = 1e-8;
    const RoaRun dec = core::run_roa(inst, dec_opt);

    const InvariantReport inv = check_trajectory(inst, dec.trajectory);
    if (!inv.ok())
      rec.mismatch("decomposed invariants: " + inv.violations.front().invariant,
                   inv.violations.front().magnitude);

    // Compare on cost, per-cloud aggregates, and y: the per-edge x split is
    // not unique on the optimal face (see DiffOptions).
    for (std::size_t t = 0; t < inst.horizon; ++t) {
      const auto& a = runs[0].trajectory.slots[t];
      const auto& b = dec.trajectory.slots[t];
      Vec agg_a(inst.num_tier2(), 0.0), agg_b(inst.num_tier2(), 0.0);
      for (std::size_t e = 0; e < inst.num_edges(); ++e) {
        agg_a[inst.edges[e].tier2] += a.x[e];
        agg_b[inst.edges[e].tier2] += b.x[e];
      }
      rec.require("dense-vs-decomposed X@t" + std::to_string(t),
                  max_abs_diff(agg_a, agg_b), options.decomposed_primal_tol);
      rec.require("dense-vs-decomposed y@t" + std::to_string(t),
                  max_abs_diff(a.y, b.y), options.decomposed_primal_tol);
    }
    const double ca = runs[0].cost.total();
    const double cb = dec.cost.total();
    rec.require("dense-vs-decomposed cost",
                std::fabs(ca - cb) / (1.0 + std::fabs(ca)),
                options.decomposed_cost_tol);
  }
  return report;
}

DiffReport differential_lp(const Instance& inst, const std::string& label,
                           const DiffOptions& options) {
  DiffReport report;
  Recorder rec(report, inst, label, options);

  const std::size_t window = std::min<std::size_t>(2, inst.horizon);
  const core::Allocation prev = core::Allocation::zeros(inst.num_edges());
  const core::P1WindowLp lp(inst, core::InputSeries::truth(inst), 0, window,
                            prev);
  const solver::LpCrossCheck cc = solver::cross_check(lp.model());
  rec.require("lp objective gap", cc.objective_gap, options.lp_gap_tol);
  rec.require("lp simplex feasibility",
              lp.model().max_violation(cc.simplex.x), options.lp_feas_tol);
  rec.require("lp pdhg feasibility", lp.model().max_violation(cc.pdhg.x),
              options.lp_feas_tol);
  return report;
}

}  // namespace sora::testing
