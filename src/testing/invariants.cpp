#include "testing/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/competitive.hpp"
#include "core/cost.hpp"
#include "core/p1_model.hpp"
#include "util/check.hpp"

namespace sora::testing {
namespace {

using cloudnet::Instance;
using core::Allocation;
using core::InputSeries;
using linalg::Vec;

class Collector {
 public:
  Collector(InvariantReport& report, double tol, std::size_t slot)
      : report_(report), tol_(tol), slot_(slot) {}

  /// Requires value >= bound - tol; records `name` otherwise.
  void require_ge(const char* name, double value, double bound,
                  const std::string& detail) {
    if (value >= bound - tol_) return;
    report_.violations.push_back(
        {name, slot_, (bound - tol_) - value, detail});
  }

  /// Requires value <= bound + tol.
  void require_le(const char* name, double value, double bound,
                  const std::string& detail) {
    require_ge(name, bound, value, detail);
  }

  void require_finite(const char* name, double value,
                      const std::string& detail) {
    if (std::isfinite(value)) return;
    report_.violations.push_back({name, slot_, value, detail});
  }

 private:
  InvariantReport& report_;
  double tol_;
  std::size_t slot_;
};

std::string at_edge(std::size_t e) { return "edge " + std::to_string(e); }
std::string at_tier1(std::size_t j) { return "tier-1 " + std::to_string(j); }
std::string at_tier2(std::size_t i) { return "tier-2 " + std::to_string(i); }

void check_slot(const Instance& inst, std::size_t t, const Allocation& a,
                const InvariantOptions& options, InvariantReport& report) {
  Collector c(report, options.feas_tol, t);
  const bool with_z = inst.has_tier1();

  for (std::size_t e = 0; e < inst.num_edges(); ++e) {
    c.require_finite("finite", a.x[e], "x " + at_edge(e));
    c.require_finite("finite", a.y[e], "y " + at_edge(e));
    c.require_ge("nonnegativity(1e)", a.x[e], 0.0, "x " + at_edge(e));
    c.require_ge("nonnegativity(1e)", a.y[e], 0.0, "y " + at_edge(e));
    c.require_le("edge-capacity(1c)", a.y[e], inst.edge_capacity[e],
                 at_edge(e));
    if (with_z) c.require_ge("nonnegativity(1e)", a.z[e], 0.0, "z " + at_edge(e));
  }

  // Coverage (1a): the deliverable rate of tier-1 cloud j is the sum over
  // its edges of min(x, y[, z]) — the s-elimination of types.hpp.
  for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
    double deliverable = 0.0;
    for (const std::size_t e : inst.edges_of_tier1[j]) {
      double rate = std::min(a.x[e], a.y[e]);
      if (with_z) rate = std::min(rate, a.z[e]);
      deliverable += rate;
    }
    c.require_ge("coverage(1a)", deliverable, inst.demand[t][j], at_tier1(j));
  }

  // Tier-2 capacity (1b) on the per-cloud aggregate X_i.
  const Vec totals = core::tier2_totals(inst, a.x);
  for (std::size_t i = 0; i < inst.num_tier2(); ++i)
    c.require_le("tier2-capacity(1b)", totals[i], inst.tier2_capacity[i],
                 at_tier2(i));

  if (with_z) {
    const Vec z_totals = core::tier1_totals(inst, a.z);
    for (std::size_t j = 0; j < inst.num_tier1(); ++j)
      c.require_le("tier1-capacity(1d)", z_totals[j], inst.tier1_capacity[j],
                   at_tier1(j));
  }
}

}  // namespace

std::string InvariantReport::summary() const {
  std::vector<const InvariantViolation*> sorted;
  sorted.reserve(violations.size());
  for (const auto& v : violations) sorted.push_back(&v);
  std::sort(sorted.begin(), sorted.end(),
            [](const InvariantViolation* a, const InvariantViolation* b) {
              return a->magnitude > b->magnitude;
            });
  std::ostringstream os;
  for (const auto* v : sorted)
    os << v->invariant << " violated at slot " << v->slot << " by "
       << v->magnitude << " (" << v->detail << ")\n";
  return os.str();
}

InvariantReport check_trajectory(const Instance& inst,
                                 const core::Trajectory& traj,
                                 const InvariantOptions& options) {
  InvariantReport report;
  if (traj.horizon() != inst.horizon) {
    report.violations.push_back(
        {"horizon", 0,
         static_cast<double>(traj.horizon() > inst.horizon
                                 ? traj.horizon() - inst.horizon
                                 : inst.horizon - traj.horizon()),
         "trajectory has " + std::to_string(traj.horizon()) + " slots, " +
             "instance horizon is " + std::to_string(inst.horizon)});
    return report;
  }
  for (std::size_t t = 0; t < traj.horizon(); ++t)
    check_slot(inst, t, traj.slots[t], options, report);
  return report;
}

InvariantReport check_p2_solution(const Instance& inst,
                                  const InputSeries& inputs, std::size_t t,
                                  const core::P2Solution& sol,
                                  const InvariantOptions& options) {
  InvariantReport report;
  Collector c(report, options.feas_tol, t);
  const Allocation& a = sol.alloc;
  const bool with_z = inst.has_tier1();
  const std::size_t E = inst.num_edges();
  SORA_CHECK(sol.s.size() == E && a.x.size() == E && a.y.size() == E);

  double total_demand = 0.0;
  for (std::size_t j = 0; j < inst.num_tier1(); ++j)
    total_demand += inputs.lambda(t, j);

  for (std::size_t e = 0; e < E; ++e) {
    c.require_ge("(3a) x>=s", a.x[e], sol.s[e], at_edge(e));
    c.require_ge("(3b) y>=s", a.y[e], sol.s[e], at_edge(e));
    if (with_z) c.require_ge("(3f') z>=s", a.z[e], sol.s[e], at_edge(e));
    c.require_ge("nonnegativity(3f)", sol.s[e], 0.0, "s " + at_edge(e));
    c.require_ge("nonnegativity(3f)", a.x[e], 0.0, "x " + at_edge(e));
    c.require_ge("nonnegativity(3f)", a.y[e], 0.0, "y " + at_edge(e));
    c.require_le("edge-capacity(1c)", a.y[e], inst.edge_capacity[e],
                 at_edge(e));
  }

  // (3c): per tier-1 cloud, the auxiliaries cover demand.
  for (std::size_t j = 0; j < inst.num_tier1(); ++j) {
    double covered = 0.0;
    for (const std::size_t e : inst.edges_of_tier1[j]) covered += sol.s[e];
    c.require_ge("(3c) coverage", covered, inputs.lambda(t, j), at_tier1(j));
  }

  // (3d): when total demand exceeds C_i, the other clouds' x must absorb
  // the excess — the Lemma-1 feasibility-transfer row.
  const Vec totals = core::tier2_totals(inst, a.x);
  const double grand_total = linalg::sum(totals);
  for (std::size_t i = 0; i < inst.num_tier2(); ++i) {
    c.require_le("tier2-capacity(1b)", totals[i], inst.tier2_capacity[i],
                 at_tier2(i));
    const double rhs = total_demand - inst.tier2_capacity[i];
    if (rhs <= 0.0) continue;
    c.require_ge("transfer(3d)", grand_total - totals[i], rhs, at_tier2(i));
  }

  // (3e): per edge e of cloud j, the other edges of j must be able to carry
  // lambda_j - B_e.
  for (std::size_t e = 0; e < E; ++e) {
    const std::size_t j = inst.edges[e].tier1;
    const double rhs = inputs.lambda(t, j) - inst.edge_capacity[e];
    if (rhs <= 0.0) continue;
    double others = 0.0;
    for (const std::size_t e2 : inst.edges_of_tier1[j])
      if (e2 != e) others += a.y[e2];
    c.require_ge("transfer(3e)", others, rhs, at_edge(e));
  }

  if (with_z) {
    const Vec z_totals = core::tier1_totals(inst, a.z);
    for (std::size_t j = 0; j < inst.num_tier1(); ++j)
      c.require_le("tier1-capacity(1d)", z_totals[j], inst.tier1_capacity[j],
                   at_tier1(j));
  }
  return report;
}

RatioCheck check_theorem1(const Instance& inst, const core::RoaRun& run,
                          double eps, double eps_prime, double rel_slack) {
  RatioCheck check;
  const core::Trajectory offline = core::solve_offline(inst);
  check.online_cost = run.cost.total();
  check.offline_cost = core::total_cost(inst, offline).total();
  check.theoretical_ratio = core::theoretical_ratio(inst, eps, eps_prime);
  if (check.offline_cost > 0.0)
    check.empirical_ratio =
        core::empirical_ratio(check.online_cost, check.offline_cost);
  const double slack = rel_slack * (1.0 + check.offline_cost);
  check.within_bound =
      check.online_cost <=
      check.theoretical_ratio * check.offline_cost + slack;
  // The offline LP is a relaxation-free optimum: any feasible online
  // trajectory (Lemma 1 guarantees ROA's is) can never cost less. A cheaper
  // online run means the offline solver (or the cost accounting) is broken.
  check.offline_is_lower = check.online_cost >= check.offline_cost - slack;
  return check;
}

}  // namespace sora::testing
