// Slot-level SLO telemetry: streaming latency quantiles and deadline
// accounting for the per-slot solve loop.
//
// The slotted pipelines (core::run_roa, the n-tier driver, the predictive
// controllers) must land every decision before the next slot boundary; what
// operations cares about is the latency *distribution* (p50/p95/p99) and the
// deadline hit/miss ratio, not the mean. This header provides:
//
//   * SloDigest — a fixed-bucket log-histogram quantile digest. Lock-free
//     like the registry Histogram (relaxed atomic bumps), constant memory,
//     and quantiles with bounded relative error (half-octave buckets with
//     geometric interpolation: ~9% worst case). Covers 1us .. ~4.6 hours.
//   * SlotSloTracker — per-run aggregation: feed it one SlotSample per slot
//     and it produces the SlotSloReport attached to RoaRun / ControlRun /
//     NTierRoaHealth. Always live (the report is functional data); the
//     process-global `sora_slot_*` registry metrics are updated only while
//     metrics_enabled().
//   * render_slo_text() — the global latency digest as a Prometheus summary
//     (`sora_slot_latency_seconds{quantile="..."}`), appended to
//     Registry::render_text() via the text-extension hook so any exporter
//     (file export, the scrape server) carries live quantiles.
//
// Environment: SORA_SLOT_BUDGET_MS sets the default per-slot deadline budget
// (0 / unset = no deadline accounting). docs/OBSERVABILITY.md catalogues the
// metric families.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace sora::obs {

/// Streaming quantile digest over a fixed logarithmic bucket grid.
/// observe() is wait-free (one relaxed fetch_add + CAS sum); quantile() scans
/// the buckets and interpolates geometrically inside the winning bucket.
class SloDigest {
 public:
  // Half-octave buckets from kMinValue: bucket k covers
  // (kMinValue * 2^(k/2), kMinValue * 2^((k+1)/2)]. 68 buckets reach
  // ~1.6e4 s; everything above clamps into the last bucket.
  static constexpr std::size_t kBuckets = 68;
  static constexpr double kMinValue = 1e-6;

  SloDigest();

  void observe(double v);

  /// q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const;

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// One finished slot solve, as seen by the SLO layer. backend_name uses the
/// resilience-chain taxonomy (core::to_string(SolveBackend)) but is carried
/// as a string so obs stays below core in the layer order.
struct SlotSample {
  double latency_seconds = 0.0;
  const char* backend_name = "";   // producing backend
  std::size_t attempts = 1;        // fallback-chain depth (1 = primary)
  bool fell_back = false;          // non-primary backend produced the slot
  bool degraded = false;           // hold + repair
  double budget_seconds = 0.0;     // slot deadline; <= 0 disables the check
};

/// Per-run SLO rollup (attached to RoaRun and friends).
struct SlotSloReport {
  std::size_t slots = 0;
  std::size_t deadline_misses = 0;
  std::size_t fallback_slots = 0;
  std::size_t degraded_slots = 0;
  double budget_seconds = 0.0;  // 0 = deadline accounting off
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
  double mean_seconds = 0.0;

  bool met_slo() const { return deadline_misses == 0; }
};

struct SlotSloOptions {
  /// Per-slot latency budget in seconds; <= 0 disables deadline accounting.
  double budget_seconds = 0.0;
};

/// Default budget from SORA_SLOT_BUDGET_MS (read once; 0 when unset).
double default_slot_budget_seconds();

namespace detail {
void record_slot_sample_impl(const SlotSample& sample);
}  // namespace detail

/// Record one slot into the process-global `sora_slot_*` metrics and the
/// global latency digest. No-op while metrics are disabled — callers may
/// invoke it unconditionally from the hot path.
inline void record_slot_sample(const SlotSample& sample) {
  if (!metrics_enabled()) return;
  detail::record_slot_sample_impl(sample);
}

/// The global latency digest behind `sora_slot_latency_seconds` (exposed for
/// exporters and tests).
const SloDigest& global_slot_digest();
void reset_global_slot_slo();  // test isolation

/// Prometheus summary rendering of the global digest:
///   sora_slot_latency_seconds{quantile="0.5"} ...
///   sora_slot_latency_seconds_sum / _count
/// Empty string when no slot has been recorded yet.
std::string render_slo_text();

/// Per-run tracker: always aggregates locally (reports work with metrics
/// off), forwards to the global metrics when enabled.
class SlotSloTracker {
 public:
  explicit SlotSloTracker(const SlotSloOptions& options = {});

  /// Record one slot; `sample.budget_seconds` is overwritten with the
  /// tracker's configured budget.
  void record(SlotSample sample);

  SlotSloReport report() const;
  const SlotSloOptions& options() const { return options_; }

 private:
  SlotSloOptions options_;
  SloDigest digest_;
  std::size_t slots_ = 0;
  std::size_t deadline_misses_ = 0;
  std::size_t fallback_slots_ = 0;
  std::size_t degraded_slots_ = 0;
};

}  // namespace sora::obs
