#include "serve/snapshot.hpp"

#include <cstdio>
#include <cstring>

#include <fstream>

namespace sora::serve {
namespace {

constexpr char kMagic[8] = {'S', 'O', 'R', 'A', 'S', 'N', 'A', 'P'};

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t hash = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 1099511628211ull;
  }
  return hash;
}

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_f64(std::string& out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_vec(std::string& out, const core::Vec& v) {
  for (const double x : v) put_f64(out, x);
}

class Reader {
 public:
  Reader(const std::string& bytes) : bytes_(bytes) {}

  bool u32(std::uint32_t& v) { return copy(&v, 4); }
  bool u64(std::uint64_t& v) { return copy(&v, 8); }
  bool f64(double& v) { return copy(&v, 8); }
  bool vec(core::Vec& v, std::size_t n) {
    v.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      if (!f64(v[i])) return false;
    return true;
  }
  std::size_t pos() const { return pos_; }

 private:
  bool copy(void* dst, std::size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(dst, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

}  // namespace

std::string encode_snapshot(const ServeSnapshot& snap) {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, snap.has_warm ? 1u : 0u);
  put_u64(out, snap.next_slot);
  put_u64(out, snap.num_tier1);
  put_u64(out, snap.num_tier2);
  put_u64(out, snap.num_edges);
  put_u64(out, snap.has_warm ? snap.warm.size() : 0);
  put_f64(out, snap.cost.allocation);
  put_f64(out, snap.cost.reconfiguration);
  put_u64(out, snap.slots);
  put_u64(out, snap.degraded_slots);
  put_u64(out, snap.fallback_slots);
  put_u64(out, snap.deadline_misses);
  put_vec(out, snap.prev.x);
  put_vec(out, snap.prev.y);
  put_vec(out, snap.prev.z);
  if (snap.has_warm) put_vec(out, snap.warm);
  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

bool decode_snapshot(const std::string& bytes, ServeSnapshot& out,
                     std::string* error) {
  out = ServeSnapshot{};
  if (bytes.size() < sizeof kMagic + 8 ||
      std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    set_error(error, "not a sora_serve snapshot (bad magic)");
    return false;
  }
  std::uint64_t trailer = 0;
  std::memcpy(&trailer, bytes.data() + bytes.size() - 8, 8);
  if (fnv1a(bytes.data(), bytes.size() - 8) != trailer) {
    set_error(error, "snapshot checksum mismatch (truncated or corrupt)");
    return false;
  }

  Reader r(bytes);
  std::uint32_t magic_skip[2];
  r.u32(magic_skip[0]);
  r.u32(magic_skip[1]);  // the 8 magic bytes
  std::uint32_t version = 0, flags = 0;
  std::uint64_t next_slot = 0, j = 0, i = 0, e = 0, warm_size = 0;
  if (!r.u32(version) || !r.u32(flags) || !r.u64(next_slot) || !r.u64(j) ||
      !r.u64(i) || !r.u64(e) || !r.u64(warm_size)) {
    set_error(error, "snapshot header truncated");
    return false;
  }
  if (version != kSnapshotVersion) {
    set_error(error, "unsupported snapshot version " +
                         std::to_string(version) + " (expected " +
                         std::to_string(kSnapshotVersion) + ")");
    return false;
  }
  out.next_slot = next_slot;
  out.num_tier1 = j;
  out.num_tier2 = i;
  out.num_edges = e;
  out.has_warm = (flags & 1u) != 0;
  if (!r.f64(out.cost.allocation) || !r.f64(out.cost.reconfiguration) ||
      !r.u64(out.slots) || !r.u64(out.degraded_slots) ||
      !r.u64(out.fallback_slots) || !r.u64(out.deadline_misses) ||
      !r.vec(out.prev.x, e) || !r.vec(out.prev.y, e) ||
      !r.vec(out.prev.z, e) || !r.vec(out.warm, out.has_warm ? warm_size : 0)) {
    set_error(error, "snapshot body truncated");
    return false;
  }
  if (r.pos() + 8 != bytes.size()) {
    set_error(error, "snapshot has trailing bytes");
    return false;
  }
  return true;
}

bool write_snapshot(const std::string& path, const ServeSnapshot& snap,
                    std::string* error) {
  const std::string bytes = encode_snapshot(snap);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_error(error, "cannot open " + tmp + " for writing");
      return false;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      set_error(error, "short write to " + tmp);
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    set_error(error, "rename " + tmp + " -> " + path + " failed");
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool read_snapshot(const std::string& path, ServeSnapshot& out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    set_error(error, "cannot open snapshot " + path);
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return decode_snapshot(bytes, out, error);
}

}  // namespace sora::serve
