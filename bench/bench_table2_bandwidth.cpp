// Table II — tiered WAN bandwidth pricing, plus the tier distribution the
// capacity-provisioning rule induces on the evaluation topology.
#include <iostream>
#include <map>

#include "cloudnet/pricing.hpp"
#include "eval/report.hpp"

int main() {
  using namespace sora;
  const auto scale = eval::EvalScale::from_env();
  const std::uint64_t seed = 20160704;
  eval::print_banner("Table II — bandwidth pricing", scale, seed);

  util::TablePrinter tiers({"capacity (GB/month)", "price ($/GB)"});
  util::CsvWriter csv({"up_to_gb", "price_usd_gb"});
  for (const auto& tier : cloudnet::bandwidth_tiers()) {
    const std::string cap = std::isfinite(tier.up_to_gb)
                                ? "<= " + util::TablePrinter::fmt(
                                              tier.up_to_gb, "%.0f")
                                : "> 500";
    tiers.add_row({cap, util::TablePrinter::fmt(tier.price_usd_gb, "%.3f")});
    csv.add_numeric_row({tier.up_to_gb, tier.price_usd_gb});
  }
  eval::emit("table2_tiers", tiers, csv);

  // Tier usage induced by the evaluation instance (per SLA k).
  util::TablePrinter usage({"sla k", "edges", "min price", "mean price",
                            "max price"});
  util::CsvWriter usage_csv({"k", "edges", "min", "mean", "max"});
  for (std::size_t k = 1; k <= 4; ++k) {
    eval::Scenario sc;
    sc.sla_k = k;
    const auto inst = eval::build_eval_instance(sc, scale);
    double lo = 1e300, hi = 0.0, sum = 0.0;
    for (std::size_t e = 0; e < inst.num_edges(); ++e) {
      const double p = cloudnet::bandwidth_price_usd_gb(
          inst.edge_capacity[e] * 40.0);
      lo = std::min(lo, p);
      hi = std::max(hi, p);
      sum += p;
    }
    const double mean = sum / inst.num_edges();
    usage.add_numeric_row("k=" + std::to_string(k),
                          {static_cast<double>(inst.num_edges()), lo, mean,
                           hi},
                          "%.4g");
    usage_csv.add_numeric_row({static_cast<double>(k),
                               static_cast<double>(inst.num_edges()), lo,
                               mean, hi});
  }
  eval::emit("table2_usage", usage, usage_csv);
  return 0;
}
